package harness

import (
	"strings"
	"testing"
)

// TestAblationAClaims: the naive RS+confidence shortcut sanitizes the
// root cause on the Fig. 1-shaped case, while the verified approach keeps
// it everywhere (§3.2 of the paper).
func TestAblationAClaims(t *testing.T) {
	rows, err := AblationA(nil)
	if err != nil {
		t.Fatalf("AblationA: %v", err)
	}
	if len(rows) != 9 {
		t.Fatalf("rows = %d", len(rows))
	}
	sanitized := 0
	for _, r := range rows {
		if !r.VerifiedKept {
			t.Errorf("%s: verified approach lost the root cause", r.Case)
		}
		if r.NaiveSanitizes {
			sanitized++
		}
		if r.NaiveConf < 0 || r.NaiveConf > 1 {
			t.Errorf("%s: confidence %v out of range", r.Case, r.NaiveConf)
		}
	}
	// The paper's own motivating case must be sanitized by the naive
	// combination.
	for _, r := range rows {
		if r.Case == "gzipsim/V2-F3" && !r.NaiveSanitizes {
			t.Error("gzipsim/V2-F3 (the Fig. 1 shape) must be sanitized by the naive shortcut")
		}
	}
	if sanitized == 0 {
		t.Error("the naive shortcut should sanitize at least one root cause")
	}
}

// TestAblationBClaims: both VerifyDep modes locate everything; the path
// mode never needs fewer verifications, and costs strictly more on at
// least one case (the gzip shape).
func TestAblationBClaims(t *testing.T) {
	rows, err := AblationB(nil)
	if err != nil {
		t.Fatalf("AblationB: %v", err)
	}
	strictlyMore := false
	for _, r := range rows {
		if !r.EdgeLocated || !r.PathLocated {
			t.Errorf("%s: located edge=%v path=%v", r.Case, r.EdgeLocated, r.PathLocated)
		}
		if r.PathVerifications > r.EdgeVerifications {
			strictlyMore = true
		}
	}
	if !strictlyMore {
		t.Error("path mode should cost strictly more verifications somewhere")
	}
}

// TestAblationCClaims: the locator finds every root cause; the
// critical-predicate baseline fails on the cases where no single switch
// repairs the whole output.
func TestAblationCClaims(t *testing.T) {
	rows, err := AblationC(nil)
	if err != nil {
		t.Fatalf("AblationC: %v", err)
	}
	for _, r := range rows {
		if !r.LocatorFound {
			t.Errorf("%s: locator failed", r.Case)
		}
		switch r.Case {
		case "gzipsim/V2-F3", "grepsim/V4-F2":
			if r.CritFound {
				t.Errorf("%s: no single critical predicate should exist", r.Case)
			}
		}
	}
}

func TestRenderAblation(t *testing.T) {
	out, err := RenderAblation(nil, "b")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Ablation B") {
		t.Errorf("render:\n%s", out)
	}
	if _, err := RenderAblation(nil, "Z"); err == nil {
		t.Error("unknown ablation must error")
	}
}

// TestAblationDClaims: static PD always captures the root cause; the
// exercised union graph matches it when the test suite covers the omitted
// behavior, and misses it when the suite never exercises the branch
// (gzipsim and the sedsim cascade).
func TestAblationDClaims(t *testing.T) {
	rows, err := AblationD(nil)
	if err != nil {
		t.Fatalf("AblationD: %v", err)
	}
	missed := 0
	for _, r := range rows {
		if !r.StaticCaptures {
			t.Errorf("%s: static RS must capture the root cause", r.Case)
		}
		if r.UnionRS.Dynamic > r.StaticRS.Dynamic {
			t.Errorf("%s: union RS (%v) larger than static RS (%v): union evidence is a subset",
				r.Case, r.UnionRS, r.StaticRS)
		}
		if !r.UnionCaptures {
			missed++
		}
	}
	if missed == 0 {
		t.Error("expected the union graph to miss at least one under-covered case")
	}
	for _, r := range rows {
		if r.Case == "gzipsim/V2-F3" && r.UnionCaptures {
			t.Error("gzipsim: the passing suite never saves the original name; union PD cannot know the dependence")
		}
	}
}
