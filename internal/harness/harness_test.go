package harness

import (
	"strings"
	"testing"

	"eol/internal/ddg"
)

// TestTable1 checks the benchmark inventory.
func TestTable1(t *testing.T) {
	rows := Table1()
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	total := 0
	for _, r := range rows {
		if r.LOC < 30 {
			t.Errorf("%s: LOC = %d, too small", r.Benchmark, r.LOC)
		}
		if r.Procedures < 1 {
			t.Errorf("%s: procedures = %d", r.Benchmark, r.Procedures)
		}
		total += r.ErrorCases
	}
	if total != 9 {
		t.Errorf("total error cases = %d, want 9", total)
	}
}

// TestTable2Claims verifies the paper's central Table 2 claims on every
// case: RS captures all execution omission errors; DS and PS miss all of
// them; RS ⊇ DS in both static and dynamic size.
func TestTable2Claims(t *testing.T) {
	rows, err := Table2()
	if err != nil {
		t.Fatalf("Table2: %v", err)
	}
	if len(rows) != 9 {
		t.Fatalf("rows = %d, want 9", len(rows))
	}
	dynBlowup := false
	for _, r := range rows {
		if !r.RSCaptures {
			t.Errorf("%s: RS must capture the root cause", r.Case)
		}
		if r.DSCaptures {
			t.Errorf("%s: DS must miss the root cause (execution omission)", r.Case)
		}
		if r.PSCaptures {
			t.Errorf("%s: PS must miss the root cause", r.Case)
		}
		if r.RS.Static < r.DS.Static || r.RS.Dynamic < r.DS.Dynamic {
			t.Errorf("%s: RS (%v) must be at least as large as DS (%v)", r.Case, r.RS, r.DS)
		}
		if r.PS.Dynamic > r.DS.Dynamic {
			t.Errorf("%s: PS (%v) must not exceed DS (%v)", r.Case, r.PS, r.DS)
		}
		// The paper: dynamic RS/DS ratios are much larger than static
		// ones in the aggregate.
		if r.RSDSDynamic > r.RSDSStatic+0.001 {
			dynBlowup = true
		}
	}
	if !dynBlowup {
		t.Error("expected at least one case where the dynamic RS/DS blow-up exceeds the static one")
	}
}

// TestTable3Claims verifies the effectiveness claims on every case: the
// locator captures every error; verifications, iterations and expanded
// edges stay small; IPS is close to OS.
func TestTable3Claims(t *testing.T) {
	rows, err := Table3(nil, nil)
	if err != nil {
		t.Fatalf("Table3: %v", err)
	}
	if len(rows) != 9 {
		t.Fatalf("rows = %d, want 9", len(rows))
	}
	for _, r := range rows {
		if !r.Located {
			t.Errorf("%s: root cause not located", r.Case)
			continue
		}
		if r.Iterations < 1 || r.Iterations > 4 {
			t.Errorf("%s: iterations = %d, want small (1-4)", r.Case, r.Iterations)
		}
		if r.ExpandedEdges < 1 {
			t.Errorf("%s: no implicit edges were added", r.Case)
		}
		if r.Verifications < 1 {
			t.Errorf("%s: no verifications performed", r.Case)
		}
		if r.IPS.Dynamic == 0 {
			t.Errorf("%s: empty IPS", r.Case)
		}
		// IPS ≈ OS: the pruned expanded slice should not dwarf the
		// failure-inducing chain.
		if r.OS.Dynamic > 0 && r.IPS.Dynamic > 6*r.OS.Dynamic+10 {
			t.Errorf("%s: IPS (%v) much larger than OS (%v)", r.Case, r.IPS, r.OS)
		}
	}
	// The sed V3-F2 cascade needs two expansions (the paper's only
	// 2-iteration case).
	for _, r := range rows {
		if r.Case == "sedsim/V3-F2" && r.Iterations < 2 {
			t.Errorf("sedsim/V3-F2: iterations = %d, want >= 2 (chained omissions)", r.Iterations)
		}
	}
	// grep is the heaviest case in verifications.
	var grepV, maxOther int
	for _, r := range rows {
		if r.Case == "grepsim/V4-F2" {
			grepV = r.Verifications
		} else if r.Verifications > maxOther {
			maxOther = r.Verifications
		}
	}
	if grepV <= maxOther {
		t.Logf("note: grep verifications (%d) not the strict maximum (other max %d)", grepV, maxOther)
	}
}

// TestTable4Claims: graph construction must slow execution down
// noticeably (the paper reports 18x-155x with valgrind; a tracing
// interpreter shows smaller but clearly >1 factors).
func TestTable4Claims(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	rows, err := Table4(nil, 10)
	if err != nil {
		t.Fatalf("Table4: %v", err)
	}
	slower := 0
	for _, r := range rows {
		if r.GraphPlain > 1.0 {
			slower++
		}
		if r.Verify <= 0 {
			t.Errorf("%s: no verification time measured", r.Case)
		}
	}
	if slower < len(rows)/2 {
		t.Errorf("graph construction faster than plain in most cases (%d/%d slower)", slower, len(rows))
	}
}

func TestRender(t *testing.T) {
	out, err := Render("1", Options{Reps: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "flexsim") || !strings.Contains(out, "Table 1") {
		t.Errorf("unexpected render:\n%s", out)
	}
	if _, err := Render("9", Options{Reps: 1}); err == nil {
		t.Error("unknown table must error")
	}
}

// TestTableWriters exercises the text renderers with synthetic rows.
func TestTableWriters(t *testing.T) {
	var sb strings.Builder
	WriteTable2(&sb, []Table2Row{{
		Case: "x/Y-1",
		RS:   ddgStats(5, 9), DS: ddgStats(3, 4), PS: ddgStats(2, 3),
		RSCaptures: true, RSDSStatic: 1.7, RSDSDynamic: 2.3,
	}})
	if !strings.Contains(sb.String(), "x/Y-1") || !strings.Contains(sb.String(), "RS:y DS:- PS:-") {
		t.Errorf("table 2 render:\n%s", sb.String())
	}
	sb.Reset()
	WriteTable3(&sb, []Table3Row{{Case: "x/Y-1", Located: false, IPS: ddgStats(1, 2), OS: ddgStats(1, 1)}})
	if !strings.Contains(sb.String(), "NO") {
		t.Errorf("table 3 render:\n%s", sb.String())
	}
	sb.Reset()
	WriteTable4(&sb, []Table4Row{{Case: "x/Y-1", GraphPlain: 3.5}})
	if !strings.Contains(sb.String(), "3.5") {
		t.Errorf("table 4 render:\n%s", sb.String())
	}
	sb.Reset()
	WriteAblationA(&sb, []AblationARow{{Case: "x", NaiveSanitizes: true, NaiveConf: 1, VerifiedKept: true}})
	WriteAblationC(&sb, []AblationCRow{{Case: "x", CritFound: true}})
	WriteAblationD(&sb, []AblationDRow{{Case: "x", StaticCaptures: true}})
	if !strings.Contains(sb.String(), "Ablation D") {
		t.Errorf("ablation renders:\n%s", sb.String())
	}
}

func ddgStats(st, dyn int) (s ddg.SliceStats) {
	s.Static, s.Dynamic = st, dyn
	return s
}
