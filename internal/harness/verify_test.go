package harness

import (
	"strings"
	"testing"
	"time"

	"eol/internal/bench"
)

// TestVerifyCase: the engine ablation on one case must time all three
// modes, agree across them (VerifyCase fails internally otherwise), and
// show the cache absorbing re-executions.
func TestVerifyCase(t *testing.T) {
	c := bench.ByName("gzipsim/V2-F3")
	p, err := c.Prepare()
	if err != nil {
		t.Fatal(err)
	}
	row, err := VerifyCase(p, Options{Workers: 4, Reps: 2})
	if err != nil {
		t.Fatal(err)
	}
	if row.Sequential <= 0 || row.Parallel <= 0 || row.Cached <= 0 {
		t.Errorf("non-positive timings: %+v", row)
	}
	if row.Verifications < 1 {
		t.Errorf("verifications = %d, want >= 1", row.Verifications)
	}
	if row.Runs+row.Saved < int64(row.Verifications) {
		t.Errorf("cached mode accounted %d runs + %d saved for %d verifications",
			row.Runs, row.Saved, row.Verifications)
	}
}

// TestWriteVerifyTable covers the renderer.
func TestWriteVerifyTable(t *testing.T) {
	var sb strings.Builder
	WriteVerifyTable(&sb, []VerifyRow{{
		Case: "x/Y-1", Sequential: 3 * time.Millisecond,
		Parallel: 2 * time.Millisecond, Cached: time.Millisecond,
		SpeedupPar: 1.5, SpeedupCached: 3.0, HitRate: 0.8, Runs: 4, Verifications: 20,
		ReachSkips: 2, ReplaySkips: 1,
	}})
	out := sb.String()
	if !strings.Contains(out, "x/Y-1") || !strings.Contains(out, "3.00x") {
		t.Errorf("verify table render:\n%s", out)
	}
	if !strings.Contains(out, "reach") || !strings.Contains(out, "replay") {
		t.Errorf("verify table missing the skip-split columns:\n%s", out)
	}
}
