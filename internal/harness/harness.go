// Package harness regenerates the paper's evaluation: Tables 1-4 and the
// ablations indexed in DESIGN.md, over the benchmark suite of
// internal/bench.
//
// Absolute numbers differ from the paper (interpreter vs valgrind, MiniC
// analogs vs SIR programs), but each table reproduces the corresponding
// qualitative claims:
//
//	Table 1  benchmark characteristics
//	Table 2  RS captures every omission error but blows up dynamic slice
//	         sizes; DS and PS miss every error
//	Table 3  the demand-driven locator captures every error with few
//	         verifications, iterations and expanded edges; IPS ≈ OS
//	Table 4  dependence-graph construction slows execution by large
//	         factors; verification cost scales with re-executions
//
// # Mapping onto the paper
//
// Each TableN function prepares every bench.Case (compile both versions,
// run the failing input traced, profile the passing inputs) and drives
// the same entry points a user would: the slicers for Table 2,
// core.Locate — Algorithm 2 end to end, with the ground-truth state
// oracle standing in for the interactive programmer — for Table 3, and
// interleaved min-of-N timing of the interpreter's Plain/Graph modes for
// Table 4. Table3Row's fields are, one for one, the columns of the
// paper's Table 3.
//
// # Beyond the paper
//
// VerifyTable extends Table 4's "Verification" column into an ablation
// of the verification engine (internal/verifyengine): the same
// localization run with sequential, parallel and cached scheduling,
// cross-checked to produce identical Reports — wall-clock and cache hit
// rate are the only things allowed to move. RenderAblation (ablation.go)
// covers the paper-internal design ablations indexed in DESIGN.md.
package harness

import (
	"context"
	"fmt"
	"io"
	"strings"
	"time"

	"eol/internal/bench"
	"eol/internal/confidence"
	"eol/internal/core"
	"eol/internal/ddg"
	"eol/internal/interp"
	"eol/internal/obs"
	"eol/internal/oracle"
	"eol/internal/slicing"
	"eol/internal/trace"
)

// Table1Row is one row of Table 1 (benchmark characteristics).
type Table1Row struct {
	Benchmark  string
	LOC        int
	Procedures int
	ErrorType  string
	ErrorCases int
}

// Table1 summarizes the benchmark programs.
func Table1() []Table1Row {
	type agg struct {
		c *bench.Case
		n int
	}
	order := []string{"flexsim", "grepsim", "gzipsim", "sedsim"}
	m := map[string]*agg{}
	for _, c := range bench.Cases() {
		if m[c.Program] == nil {
			m[c.Program] = &agg{c: c}
		}
		m[c.Program].n++
	}
	var rows []Table1Row
	for _, name := range order {
		a := m[name]
		if a == nil {
			continue
		}
		comp, err := interp.Compile(a.c.CorrectSrc)
		procs := 0
		if err == nil {
			procs = len(comp.Prog.Funcs)
		}
		rows = append(rows, Table1Row{
			Benchmark:  name,
			LOC:        a.c.LOC(),
			Procedures: procs,
			ErrorType:  "seeded",
			ErrorCases: a.n,
		})
	}
	return rows
}

// Table2Row is one row of Table 2 (slice sizes).
type Table2Row struct {
	Case        string
	RS, DS, PS  ddg.SliceStats
	RSCaptures  bool // RS contains the root cause
	DSCaptures  bool
	PSCaptures  bool
	RSDSStatic  float64 // RS/DS ratios
	RSDSDynamic float64
	RSPSStatic  float64
	RSPSDynamic float64
}

// Table2 computes DS, RS and PS for every error case.
func Table2() ([]Table2Row, error) {
	var rows []Table2Row
	for _, c := range bench.Cases() {
		p, err := c.Prepare()
		if err != nil {
			return nil, err
		}
		row, err := table2Case(p)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", c.Name(), err)
		}
		rows = append(rows, *row)
	}
	return rows, nil
}

func table2Case(p *bench.Prepared) (*Table2Row, error) {
	tr := p.Run.Trace
	seq, missing, ok := slicing.FirstWrongOutput(p.Run.OutputValues(), p.Expected)
	if !ok || missing {
		return nil, fmt.Errorf("no wrong-value failure")
	}
	seed := slicing.FailureSeeds(tr, seq)
	cx := slicing.NewContext(p.Faulty, tr)

	gDS := ddg.New(tr)
	ds := slicing.Dynamic(gDS, seed)

	gRS := ddg.New(tr)
	rs := cx.Relevant(gRS, seed)

	// PS: automatic confidence pruning of DS (no user interaction).
	wrong := *tr.OutputAt(seq)
	var correct []trace.Output
	for i := 0; i < seq; i++ {
		correct = append(correct, *tr.OutputAt(i))
	}
	an := confidence.New(p.Faulty, gDS, p.Profile, correct, wrong)
	an.Compute()
	ps := ddg.NewSet(tr.Len())
	for _, cand := range an.FaultCandidates() {
		ps.Add(cand.Entry)
	}

	row := &Table2Row{
		Case:       p.Case.Name(),
		RS:         gRS.Stats(rs),
		DS:         gDS.Stats(ds),
		PS:         gDS.Stats(ps),
		RSCaptures: gRS.ContainsStmt(rs, p.RootStmt),
		DSCaptures: gDS.ContainsStmt(ds, p.RootStmt),
		PSCaptures: gDS.ContainsStmt(ps, p.RootStmt),
	}
	row.RSDSStatic = ratio(row.RS.Static, row.DS.Static)
	row.RSDSDynamic = ratio(row.RS.Dynamic, row.DS.Dynamic)
	row.RSPSStatic = ratio(row.RS.Static, row.PS.Static)
	row.RSPSDynamic = ratio(row.RS.Dynamic, row.PS.Dynamic)
	return row, nil
}

func ratio(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// Table3Row is one row of Table 3 (effectiveness).
type Table3Row struct {
	Case          string
	UserPrunings  int
	Verifications int
	Iterations    int
	ExpandedEdges int
	IPS           ddg.SliceStats
	OS            ddg.SliceStats
	Located       bool
}

// Table3 runs the demand-driven locator on every case, bounded by ctx
// (nil = background).
func Table3(ctx context.Context, o obs.Observer) ([]Table3Row, error) {
	var rows []Table3Row
	for _, c := range bench.Cases() {
		p, err := c.Prepare()
		if err != nil {
			return nil, err
		}
		row, err := Table3Case(ctx, p, o)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", c.Name(), err)
		}
		rows = append(rows, *row)
	}
	return rows, nil
}

// Table3Case runs localization for one prepared case, streaming events
// to o when non-nil, bounded by ctx (nil = background).
func Table3Case(ctx context.Context, p *bench.Prepared, o obs.Observer) (*Table3Row, error) {
	spec := p.Spec()
	spec.Observer = o
	rep, err := core.LocateContext(ctx, spec)
	if err != nil {
		return nil, err
	}
	osStats := failureChain(p, rep)
	return &Table3Row{
		Case:          p.Case.Name(),
		UserPrunings:  rep.Stats.UserPrunings,
		Verifications: rep.Stats.Verifications,
		Iterations:    rep.Stats.Iterations,
		ExpandedEdges: rep.Stats.ExpandedEdges,
		IPS:           rep.IPS,
		OS:            osStats,
		Located:       rep.Located,
	}, nil
}

// failureChain computes OS, the failure-inducing dependence chain: the
// corrupted-state entries (ground truth from trace pairing) lying on the
// backward closure of the wrong output in the final expanded graph. This
// mechanizes the chain the paper's authors identified manually.
func failureChain(p *bench.Prepared, rep *core.Report) ddg.SliceStats {
	pairing := oracle.Pair(rep.Trace, p.CorrectTrace().Trace)
	corrupted := pairing.Corrupted()
	slice := rep.Graph.BackwardSlice(
		ddg.Explicit|ddg.Implicit|ddg.StrongImplicit, rep.WrongOutput.Entry)
	chain := ddg.NewSet(rep.Trace.Len())
	slice.ForEach(func(e int) {
		if corrupted[e] {
			chain.Add(e)
		}
	})
	return rep.Graph.Stats(chain)
}

// Table4Row is one row of Table 4 (performance).
type Table4Row struct {
	Case       string
	Plain      time.Duration // interpretation without tracing
	Graph      time.Duration // full dependence-graph construction
	Verify     time.Duration // all verification re-executions
	GraphPlain float64       // slowdown factor
}

// Table4 measures Plain vs Graph vs Verification cost per case. reps
// controls the repetitions; measurements interleave the two modes and
// report the per-mode minimum, which resists scheduler and GC noise on
// the microsecond-scale executions (the paper's original runs were "a
// few milliseconds" and noisy for the same reason).
func Table4(ctx context.Context, reps int) ([]Table4Row, error) {
	if reps <= 0 {
		reps = 20
	}
	var rows []Table4Row
	for _, c := range bench.Cases() {
		p, err := c.Prepare()
		if err != nil {
			return nil, err
		}

		timeOne := func(trace bool) (time.Duration, error) {
			start := time.Now()
			r := interp.Run(p.Faulty, interp.Options{Input: c.FailingInput, BuildTrace: trace})
			d := time.Since(start)
			return d, r.Err
		}
		// Warm-up, then interleaved min-of-N.
		if _, err := timeOne(false); err != nil {
			return nil, err
		}
		if _, err := timeOne(true); err != nil {
			return nil, err
		}
		plain, graph := time.Duration(1<<62), time.Duration(1<<62)
		for i := 0; i < reps; i++ {
			dp, err := timeOne(false)
			if err != nil {
				return nil, err
			}
			dg, err := timeOne(true)
			if err != nil {
				return nil, err
			}
			if dp < plain {
				plain = dp
			}
			if dg < graph {
				graph = dg
			}
		}

		start := time.Now()
		if _, err := core.LocateContext(ctx, p.Spec()); err != nil {
			return nil, err
		}
		verify := time.Since(start)

		row := Table4Row{Case: c.Name(), Plain: plain, Graph: graph, Verify: verify}
		if plain > 0 {
			row.GraphPlain = float64(graph) / float64(plain)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// ---------------------------------------------------------------------------
// Rendering

// WriteTable1 renders Table 1 as text.
func WriteTable1(w io.Writer, rows []Table1Row) {
	fmt.Fprintf(w, "Table 1. Characteristics of benchmarks\n")
	fmt.Fprintf(w, "%-10s %6s %6s %-8s %s\n", "Benchmark", "LOC", "Procs", "Type", "Cases")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %6d %6d %-8s %d\n", r.Benchmark, r.LOC, r.Procedures, r.ErrorType, r.ErrorCases)
	}
}

// WriteTable2 renders Table 2 as text.
func WriteTable2(w io.Writer, rows []Table2Row) {
	fmt.Fprintf(w, "Table 2. Execution omission errors: slice sizes (static/dynamic)\n")
	fmt.Fprintf(w, "%-16s %13s %13s %13s %11s %11s  %s\n",
		"Case", "RS", "DS", "PS", "RS/DS", "RS/PS", "captured by")
	for _, r := range rows {
		cap3 := func(b bool) string {
			if b {
				return "y"
			}
			return "-"
		}
		fmt.Fprintf(w, "%-16s %6d/%-6d %6d/%-6d %6d/%-6d %5.2f/%-5.2f %5.2f/%-5.2f  RS:%s DS:%s PS:%s\n",
			r.Case,
			r.RS.Static, r.RS.Dynamic,
			r.DS.Static, r.DS.Dynamic,
			r.PS.Static, r.PS.Dynamic,
			r.RSDSStatic, r.RSDSDynamic,
			r.RSPSStatic, r.RSPSDynamic,
			cap3(r.RSCaptures), cap3(r.DSCaptures), cap3(r.PSCaptures))
	}
}

// WriteTable3 renders Table 3 as text.
func WriteTable3(w io.Writer, rows []Table3Row) {
	fmt.Fprintf(w, "Table 3. Effectiveness\n")
	fmt.Fprintf(w, "%-16s %9s %7s %6s %6s %13s %13s %8s\n",
		"Case", "prunings", "verifs", "iters", "edges", "IPS", "OS", "located")
	for _, r := range rows {
		loc := "YES"
		if !r.Located {
			loc = "NO"
		}
		fmt.Fprintf(w, "%-16s %9d %7d %6d %6d %6d/%-6d %6d/%-6d %8s\n",
			r.Case, r.UserPrunings, r.Verifications, r.Iterations, r.ExpandedEdges,
			r.IPS.Static, r.IPS.Dynamic, r.OS.Static, r.OS.Dynamic, loc)
	}
}

// WriteTable4 renders Table 4 as text.
func WriteTable4(w io.Writer, rows []Table4Row) {
	fmt.Fprintf(w, "Table 4. Performance\n")
	fmt.Fprintf(w, "%-16s %12s %12s %12s %12s\n", "Case", "Plain", "Graph", "Verif.", "Graph/Plain")
	for _, r := range rows {
		fmt.Fprintf(w, "%-16s %12s %12s %12s %12.1f\n",
			r.Case, r.Plain, r.Graph, r.Verify, r.GraphPlain)
	}
}

// Options parameterizes Render and the table builders that run whole
// localizations. The zero value reproduces the historical defaults.
type Options struct {
	// Reps is the timing repetitions for tables 4 and verify (0 = default).
	Reps int
	// Workers is the worker-pool size for the verify table's parallel
	// and cached modes (0 = default 4).
	Workers int
	// Cache overrides the cached mode's switched-run cache size
	// (0 = engine default, negative disables it).
	Cache int
	// Checkpoints bounds the failing-run checkpoint store for the verify
	// table's localizations (0 = interpreter default, negative disables
	// checkpointed switched replay). Results are mode-independent; only
	// the timings move.
	Checkpoints int
	// Backend names the execution backend for the verify table's
	// localizations ("" = library default). Results are
	// backend-independent; only the timings move.
	Backend string
	// Observer, if non-nil, observes the Table 3 localizations and the
	// verify table's warm-up round. Timed rounds always run unobserved
	// so observation never perturbs the measurements.
	Observer obs.Observer
	// Ctx bounds every localization a table builder runs
	// (nil = background): on expiry the builder returns the underlying
	// core error, matching interp.ErrDeadline/ErrCanceled via errors.Is.
	Ctx context.Context
}

// Render runs and renders the requested table ("1".."4", or "verify"
// for the verification-engine throughput comparison) into a string.
func Render(table string, opt Options) (string, error) {
	var sb strings.Builder
	switch table {
	case "verify", "5":
		rows, err := VerifyTable(opt)
		if err != nil {
			return "", err
		}
		WriteVerifyTable(&sb, rows)
	case "1":
		WriteTable1(&sb, Table1())
	case "2":
		rows, err := Table2()
		if err != nil {
			return "", err
		}
		WriteTable2(&sb, rows)
	case "3":
		rows, err := Table3(opt.Ctx, opt.Observer)
		if err != nil {
			return "", err
		}
		WriteTable3(&sb, rows)
	case "4":
		rows, err := Table4(opt.Ctx, opt.Reps)
		if err != nil {
			return "", err
		}
		WriteTable4(&sb, rows)
	default:
		return "", fmt.Errorf("unknown table %q (want 1-4 or verify)", table)
	}
	return sb.String(), nil
}
