package harness

import (
	"fmt"
	"io"
	"reflect"
	"time"

	"eol/internal/backend"
	"eol/internal/bench"
	"eol/internal/core"
)

// VerifyRow compares verification scheduling modes for one error case:
// the engine ablation behind Table 4's "Verification" column. All three
// modes run the full demand-driven localization; they differ only in how
// the switched re-executions are scheduled.
type VerifyRow struct {
	Case string
	// Sequential: workers=1, cache disabled (the pre-engine inline path).
	Sequential time.Duration
	// Parallel: workers=N, cache disabled.
	Parallel time.Duration
	// Cached: workers=N plus the switched-run cache.
	Cached time.Duration
	// SpeedupPar / SpeedupCached are Sequential divided by the mode time.
	SpeedupPar, SpeedupCached float64
	// HitRate is the switched-run cache hit rate in cached mode; Runs the
	// re-executions it still performed, Saved the ones it avoided.
	HitRate float64
	Runs    int64
	Saved   int64
	// Verifications is the (mode-independent) verification count.
	Verifications int
	// ReachSkips / ReplaySkips split the verification-avoidance sources:
	// candidates retired pre-execution by the SPDG reach filter vs. by
	// trace replay (docs/STATICDEP.md). Both are decided in the engine's
	// sequential planning loop, hence mode-independent.
	ReachSkips, ReplaySkips int64
}

// VerifyCase measures one case with the given parallel worker count,
// min-of-reps per mode, interleaved against scheduler noise. It fails if
// the three modes disagree on any reproducibility-relevant Report field —
// the harness-level enforcement of the engine's determinism contract.
// opt.Observer, when non-nil, sees the warm-up round only: the timed
// rounds always run unobserved.
func VerifyCase(p *bench.Prepared, opt Options) (*VerifyRow, error) {
	workers, reps := opt.Workers, opt.Reps
	if workers <= 0 {
		workers = 4
	}
	if reps <= 0 {
		reps = 5
	}
	bk, err := backend.Lookup(opt.Backend)
	if err != nil {
		return nil, err
	}
	modes := []struct {
		name             string
		workers, cacheSz int
	}{
		{"sequential", 1, -1},
		{"parallel", workers, -1},
		{"cached", workers, opt.Cache},
	}

	best := make([]time.Duration, len(modes))
	reports := make([]*core.Report, len(modes))
	for i := range best {
		best[i] = time.Duration(1 << 62)
	}
	for r := 0; r < reps+1; r++ { // first round is warm-up
		for i, m := range modes {
			spec := p.Spec()
			spec.Backend = bk
			spec.VerifyWorkers = m.workers
			spec.VerifyCacheSize = m.cacheSz
			spec.Checkpoints = opt.Checkpoints
			if r == 0 {
				spec.Observer = opt.Observer
			}
			start := time.Now()
			rep, err := core.LocateContext(opt.Ctx, spec)
			d := time.Since(start)
			if err != nil {
				return nil, fmt.Errorf("%s %s: %w", p.Case.Name(), m.name, err)
			}
			if r == 0 {
				reports[i] = rep
				continue
			}
			if d < best[i] {
				best[i] = d
			}
		}
	}

	// Determinism cross-check: every mode must report the same outcome.
	for i := 1; i < len(modes); i++ {
		if err := sameOutcome(reports[0], reports[i]); err != nil {
			return nil, fmt.Errorf("%s: %s diverged from sequential: %w",
				p.Case.Name(), modes[i].name, err)
		}
	}

	stats := reports[2].Stats
	row := &VerifyRow{
		Case:          p.Case.Name(),
		Sequential:    best[0],
		Parallel:      best[1],
		Cached:        best[2],
		HitRate:       stats.CacheHitRate(),
		Runs:          stats.SwitchedRuns,
		Saved:         stats.CacheHits,
		Verifications: reports[0].Stats.Verifications,
		ReachSkips:    reports[0].Stats.StaticReachSkips,
		ReplaySkips:   reports[0].Stats.StaticSkips,
	}
	if best[1] > 0 {
		row.SpeedupPar = float64(best[0]) / float64(best[1])
	}
	if best[2] > 0 {
		row.SpeedupCached = float64(best[0]) / float64(best[2])
	}
	return row, nil
}

// sameOutcome compares the reproducibility-relevant Report fields.
func sameOutcome(a, b *core.Report) error {
	switch {
	case a.Located != b.Located || a.RootEntry != b.RootEntry:
		return fmt.Errorf("location %v@%d vs %v@%d", a.Located, a.RootEntry, b.Located, b.RootEntry)
	case a.Stats.Verifications != b.Stats.Verifications:
		return fmt.Errorf("verifications %d vs %d", a.Stats.Verifications, b.Stats.Verifications)
	case a.Stats.UserPrunings != b.Stats.UserPrunings || a.Stats.Iterations != b.Stats.Iterations ||
		a.Stats.ExpandedEdges != b.Stats.ExpandedEdges:
		return fmt.Errorf("counters differ")
	case !reflect.DeepEqual(a.VerifyLog, b.VerifyLog):
		return fmt.Errorf("verify log order differs")
	}
	return nil
}

// VerifyTable runs VerifyCase over every benchmark case.
func VerifyTable(opt Options) ([]VerifyRow, error) {
	var rows []VerifyRow
	for _, c := range bench.Cases() {
		p, err := c.Prepare()
		if err != nil {
			return nil, err
		}
		row, err := VerifyCase(p, opt)
		if err != nil {
			return nil, err
		}
		rows = append(rows, *row)
	}
	return rows, nil
}

// WriteVerifyTable renders the verification-throughput comparison.
func WriteVerifyTable(w io.Writer, rows []VerifyRow) {
	fmt.Fprintf(w, "Verification throughput: sequential vs parallel vs cached (min-of-reps)\n")
	fmt.Fprintf(w, "%-16s %10s %10s %10s %6s %6s %7s %6s %6s %6s %6s\n",
		"Case", "Seq", "Par", "Cached", "xPar", "xCache", "hit%", "runs", "verifs", "reach", "replay")
	for _, r := range rows {
		fmt.Fprintf(w, "%-16s %10s %10s %10s %5.2fx %5.2fx %6.1f%% %6d %6d %6d %6d\n",
			r.Case, r.Sequential.Round(time.Microsecond),
			r.Parallel.Round(time.Microsecond), r.Cached.Round(time.Microsecond),
			r.SpeedupPar, r.SpeedupCached, 100*r.HitRate, r.Runs, r.Verifications,
			r.ReachSkips, r.ReplaySkips)
	}
}
