// Package critpred implements the predicate-switching baseline the paper
// builds on: "Locating faults through automated predicate switching"
// (Zhang, Gupta, Gupta — ICSE 2006).
//
// A predicate instance is *critical* if forcibly inverting its branch
// outcome makes the failing run produce the expected output. The ICSE
// 2006 tool searches for a critical predicate by brute-force re-execution
// under two orderings:
//
//	LEFS   last-executed-first-switched: predicate instances in reverse
//	       execution order;
//	PRIOR  prioritized: instances on the dynamic slice of the wrong
//	       output first (ordered by dependence distance), then the rest
//	       in LEFS order.
//
// The PLDI 2007 paper repurposes switching to verify individual implicit
// dependences instead of searching for output repair; this package
// provides the original search as a baseline, so the re-execution counts
// of the two approaches can be compared (see the ablation benches).
package critpred

import (
	"sort"

	"eol/internal/ddg"
	"eol/internal/interp"
	"eol/internal/lang/ast"
	"eol/internal/slicing"
	"eol/internal/trace"
)

// Strategy selects the search order.
type Strategy int

// Search orders.
const (
	LEFS Strategy = iota
	Prior
)

// String names the strategy.
func (s Strategy) String() string {
	if s == Prior {
		return "PRIOR"
	}
	return "LEFS"
}

// Options configure the search.
type Options struct {
	Strategy Strategy
	// MaxSwitches bounds the number of re-executions (0 = all instances).
	MaxSwitches int
	// BudgetFactor bounds each switched run relative to the original
	// trace length (default 10).
	BudgetFactor int
}

// Result reports the search outcome.
type Result struct {
	// Found reports whether a critical predicate was identified.
	Found bool
	// Critical is the critical predicate instance.
	Critical trace.Instance
	// Switches counts the re-executions performed.
	Switches int
	// Candidates is how many predicate instances were eligible.
	Candidates int
}

// Search looks for a critical predicate in the failing run of c on input,
// judged against the expected output values.
func Search(c *interp.Compiled, input []int64, expected []int64, opts Options) *Result {
	res := &Result{}
	orig := interp.Run(c, interp.Options{Input: input, BuildTrace: true})
	if orig.Err != nil || orig.Trace == nil {
		return res
	}
	order := candidateOrder(c, orig, expected, opts.Strategy)
	res.Candidates = len(order)

	factor := opts.BudgetFactor
	if factor <= 0 {
		factor = 10
	}
	budget := factor*orig.Trace.Len() + 1000

	for _, inst := range order {
		if opts.MaxSwitches > 0 && res.Switches >= opts.MaxSwitches {
			return res
		}
		res.Switches++
		sw := interp.Run(c, interp.Options{
			Input:      input,
			Switch:     &interp.SwitchPlan{Stmt: inst.Stmt, Occ: inst.Occ},
			StepBudget: budget,
		})
		if sw.Err != nil || !sw.SwitchApplied {
			continue
		}
		if equalOutputs(sw.OutputValues(), expected) {
			res.Found = true
			res.Critical = inst
			return res
		}
	}
	return res
}

// candidateOrder enumerates predicate instances in the chosen order.
func candidateOrder(c *interp.Compiled, orig *interp.Result, expected []int64, s Strategy) []trace.Instance {
	tr := orig.Trace
	var all []int
	for i := 0; i < tr.Len(); i++ {
		st := c.Info.Stmt(tr.At(i).Inst.Stmt)
		if st != nil && ast.IsPredicate(st) {
			all = append(all, i)
		}
	}
	// LEFS: reverse execution order.
	sort.Sort(sort.Reverse(sort.IntSlice(all)))

	if s == Prior {
		seq, missing, ok := slicing.FirstWrongOutput(orig.OutputValues(), expected)
		if ok && !missing {
			seed := slicing.FailureSeeds(tr, seq)
			g := ddg.New(tr)
			dist := g.Distances(ddg.Explicit, seed)
			inSlice := func(i int) (int, bool) {
				if dist == nil || dist[i] < 0 {
					return 0, false
				}
				return int(dist[i]), true
			}
			sort.SliceStable(all, func(a, b int) bool {
				da, oka := inSlice(all[a])
				db, okb := inSlice(all[b])
				if oka != okb {
					return oka // sliced instances first
				}
				if oka && okb && da != db {
					return da < db // closer to the failure first
				}
				return all[a] > all[b] // then LEFS
			})
		}
	}

	insts := make([]trace.Instance, len(all))
	for i, idx := range all {
		insts[i] = tr.At(idx).Inst
	}
	return insts
}

func equalOutputs(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
