package critpred

import (
	"testing"

	"eol/internal/bench"
	"eol/internal/testsupport"
	"eol/internal/trace"
)

// TestFig1CriticalPredicate: switching the first saveOrigName if repairs
// the Fig. 1 output, so the search must identify it.
func TestFig1CriticalPredicate(t *testing.T) {
	c := testsupport.Compile(t, testsupport.Fig1Faulty)
	fixed := testsupport.Compile(t, testsupport.Fig1Fixed)
	expected := testsupport.Run(t, fixed, testsupport.Fig1Input).OutputValues()

	ifFlags := testsupport.StmtID(t, c, "if (saveOrigName)")
	for _, strat := range []Strategy{LEFS, Prior} {
		res := Search(c, testsupport.Fig1Input, expected, Options{Strategy: strat})
		if !res.Found {
			t.Errorf("%v: no critical predicate found", strat)
			continue
		}
		// Both saveOrigName ifs repair the flags byte? Only the first
		// does: switching the second emits name bytes but leaves the
		// wrong flags byte.
		if res.Critical != (trace.Instance{Stmt: ifFlags, Occ: 1}) {
			t.Errorf("%v: critical = %v, want S%d#1", strat, res.Critical, ifFlags)
		}
		if res.Switches < 1 || res.Switches > res.Candidates {
			t.Errorf("%v: switches = %d (candidates %d)", strat, res.Switches, res.Candidates)
		}
	}
}

// TestPriorNeedsFewerSwitches: on Fig. 1 the prioritized order tries the
// sliced predicates first and finds the critical predicate in no more
// switches than LEFS.
func TestPriorNeedsFewerSwitches(t *testing.T) {
	c := testsupport.Compile(t, testsupport.Fig1Faulty)
	fixed := testsupport.Compile(t, testsupport.Fig1Fixed)
	expected := testsupport.Run(t, fixed, testsupport.Fig1Input).OutputValues()

	lefs := Search(c, testsupport.Fig1Input, expected, Options{Strategy: LEFS})
	prior := Search(c, testsupport.Fig1Input, expected, Options{Strategy: Prior})
	if !lefs.Found || !prior.Found {
		t.Fatalf("search failed: lefs=%v prior=%v", lefs.Found, prior.Found)
	}
	if prior.Switches > lefs.Switches {
		t.Logf("note: PRIOR took %d switches, LEFS %d", prior.Switches, lefs.Switches)
	}
}

// TestNoCriticalPredicate: a value error that no branch flip can repair.
func TestNoCriticalPredicate(t *testing.T) {
	src := `
func main() {
    var a = read();
    if (a > 0) {
        print(a * 3);
    } else {
        print(0 - a);
    }
}`
	c := testsupport.Compile(t, src)
	// a=5 prints 15; expected 10 (as if the fault were *3 instead of *2):
	// switching the if prints -5, not 10.
	res := Search(c, []int64{5}, []int64{10}, Options{})
	if res.Found {
		t.Errorf("found a spurious critical predicate: %v", res.Critical)
	}
	if res.Switches != res.Candidates {
		t.Errorf("should have tried all %d candidates, tried %d", res.Candidates, res.Switches)
	}
}

// TestMaxSwitchesBound: the search respects the re-execution budget.
func TestMaxSwitchesBound(t *testing.T) {
	c := testsupport.Compile(t, testsupport.Fig1Faulty)
	res := Search(c, testsupport.Fig1Input, []int64{999, 999}, Options{MaxSwitches: 2})
	if res.Switches > 2 {
		t.Errorf("switches = %d, want <= 2", res.Switches)
	}
}

// TestBenchmarksHaveCriticalPredicates: on the single-omission benchmark
// cases, predicate switching alone can repair the output (the basis of
// the technique); the cascade case (sedsim/V3-F2) cannot be repaired by
// one switch, which is exactly why the demand-driven multi-step technique
// is needed.
func TestBenchmarksHaveCriticalPredicates(t *testing.T) {
	for _, name := range []string{"flexsim/V1-F9", "flexsim/V3-F10", "sedsim/V3-F3"} {
		p, err := bench.ByName(name).Prepare()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		res := Search(p.Faulty, p.Case.FailingInput, p.Expected, Options{Strategy: Prior})
		if !res.Found {
			t.Errorf("%s: no critical predicate found", name)
		}
	}

	// gzipsim/V2-F3 has NO critical predicate: repairing the output needs
	// both saveOrigName branches flipped at once (flags byte AND name
	// bytes). This is the paper's motivation for verifying individual
	// dependences at the failure point instead of demanding whole-output
	// repair.
	pg, err := bench.ByName("gzipsim/V2-F3").Prepare()
	if err != nil {
		t.Fatal(err)
	}
	resg := Search(pg.Faulty, pg.Case.FailingInput, pg.Expected, Options{Strategy: Prior})
	if resg.Found {
		t.Errorf("gzipsim/V2-F3: unexpected critical predicate %v (two branches must flip together)", resg.Critical)
	}

	// The two-step omission chain: a single switch repairs it only if
	// one predicate dominates the whole divergence. Switching B (the
	// status if) directly repairs the output here, so it IS found; the
	// point of the comparison is that critpred stops at the predicate,
	// while the locator digs to the root cause.
	p, err := bench.ByName("sedsim/V3-F2").Prepare()
	if err != nil {
		t.Fatal(err)
	}
	res := Search(p.Faulty, p.Case.FailingInput, p.Expected, Options{Strategy: Prior})
	if res.Found {
		crit := p.Faulty.Info.Stmt(res.Critical.Stmt)
		if crit == nil {
			t.Fatalf("critical statement %d unknown", res.Critical.Stmt)
		}
		if res.Critical.Stmt == p.RootStmt {
			t.Errorf("critpred cannot name the root cause (a declaration), got S%d", res.Critical.Stmt)
		}
	}
}
