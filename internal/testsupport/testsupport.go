// Package testsupport provides helpers shared by the test suites of the
// analysis packages: compiling MiniC snippets, locating statements by
// source fragment, and canned example programs from the paper's figures.
package testsupport

import (
	"fmt"
	"strings"

	"eol/internal/check"
	"eol/internal/interp"
	"eol/internal/lang/ast"
)

// TB is the subset of testing.TB used here, so this package does not
// import "testing" (which would trip vet in non-test code).
type TB interface {
	Helper()
	Fatalf(format string, args ...any)
}

// Compile compiles src or fails the test.
func Compile(t TB, src string) *interp.Compiled {
	t.Helper()
	c, err := interp.Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return c
}

// Run executes a compiled program with tracing and fails the test on a
// runtime error.
func Run(t TB, c *interp.Compiled, input []int64) *interp.Result {
	t.Helper()
	r := interp.Run(c, interp.Options{Input: input, BuildTrace: true})
	if r.Err != nil {
		t.Fatalf("run: %v", r.Err)
	}
	return r
}

// Validate runs the static checker suite (internal/check) over a
// compiled subject and reports Error-severity findings — unreachable
// code, constant out-of-bounds indices — that would silently corrupt
// slice sizes or verification counts if the subject entered a harness.
// Warnings and infos are tolerated: benchmark faults deliberately look
// suspicious.
func Validate(c *interp.Compiled) error {
	var bad []string
	for _, d := range check.Vet(check.NewUnit(c, nil)) {
		if d.Severity == check.Error {
			bad = append(bad, d.String())
		}
	}
	if len(bad) > 0 {
		return fmt.Errorf("subject fails static validation:\n  %s", strings.Join(bad, "\n  "))
	}
	return nil
}

// MustValid fails the test when Validate rejects the subject.
func MustValid(t TB, c *interp.Compiled) {
	t.Helper()
	if err := Validate(c); err != nil {
		t.Fatalf("%v", err)
	}
}

// StmtID returns the ID of the first statement whose one-line rendering
// contains frag.
func StmtID(t TB, c *interp.Compiled, frag string) int {
	t.Helper()
	for _, s := range c.Info.Stmts {
		if strings.Contains(ast.StmtString(s), frag) {
			return s.ID()
		}
	}
	t.Fatalf("no statement containing %q in:\n%s", frag, NumberedListing(c))
	return 0
}

// NumberedListing renders the program with S<n> labels for diagnostics.
func NumberedListing(c *interp.Compiled) string {
	var sb strings.Builder
	for _, s := range c.Info.Stmts {
		fmt.Fprintf(&sb, "S%-3d %s\n", s.ID(), ast.StmtString(s))
	}
	return sb.String()
}

// Fig1Faulty is the MiniC analog of the paper's Figure 1 (gzip v3/r1):
// the root cause zeroes saveOrigName, so the "if (saveOrigName)" branch
// that would set the ORIG_NAME flag bit is not taken, and the flags byte
// written into outbuf — and later printed — is wrong. Classic dynamic
// slicing misses the root cause; relevant slicing and the implicit-
// dependence technique capture it.
const Fig1Faulty = `
var flags;
var outbuf[8];
var outcnt;

func main() {
    var deflated = 8;
    var saveOrigName = read() * 0;  // ROOT CAUSE: should be read()
    flags = 0;
    var method = deflated;
    if (saveOrigName) {             // paper's S4
        flags = flags | 8;          // paper's S5: flags |= ORIG_NAME
    }
    outbuf[outcnt] = method;
    outcnt = outcnt + 1;
    outbuf[outcnt] = flags;         // paper's S6
    outcnt = outcnt + 1;
    if (saveOrigName) {             // paper's S7
        outbuf[outcnt] = 99;        // paper's S8: original-name byte
        outcnt = outcnt + 1;
    }
    print(outbuf[0]);               // paper's S9: correct output
    print(outbuf[1]);               // paper's S10: wrong output
}
`

// Fig1Fixed is the corrected version of Fig1Faulty, used as the oracle.
var Fig1Fixed = strings.Replace(Fig1Faulty,
	"var saveOrigName = read() * 0;", "var saveOrigName = read();", 1)

// Fig1Input drives the save-original-name path: with the fix the program
// prints [8 8]; the faulty program prints [8 0], so output #1 is the
// first wrong output.
var Fig1Input = []int64{1}
