package testsupport

import (
	"fmt"
	"math/rand"
	"strings"
)

// GenConfig bounds the random program generator.
type GenConfig struct {
	// MaxStmts bounds the statements per block (default 6).
	MaxStmts int
	// MaxDepth bounds statement nesting (default 3).
	MaxDepth int
	// MaxExprDepth bounds expression nesting (default 3).
	MaxExprDepth int
	// Helpers is the number of helper functions (default 2).
	Helpers int
}

func (c GenConfig) withDefaults() GenConfig {
	if c.MaxStmts <= 0 {
		c.MaxStmts = 6
	}
	if c.MaxDepth <= 0 {
		c.MaxDepth = 3
	}
	if c.MaxExprDepth <= 0 {
		c.MaxExprDepth = 3
	}
	if c.Helpers < 0 {
		c.Helpers = 0
	} else if c.Helpers == 0 {
		c.Helpers = 2
	}
	return c
}

// RandomProgram generates a random MiniC program that is guaranteed to
// compile, terminate, and run without runtime errors on any input:
//
//   - loops are bounded fors over literal trip counts (≤ 8),
//   - array indices are loop variables or small literals (< the size),
//   - divisors, moduli and shift counts are nonzero literals,
//   - every variable is declared before use with a fresh name.
//
// It exists for property-based testing: the dynamic analyses must uphold
// their invariants on arbitrary structured programs, not just the
// hand-written benchmarks.
func RandomProgram(rnd *rand.Rand, cfg GenConfig) string {
	g := &generator{rnd: rnd, cfg: cfg.withDefaults()}
	return g.program()
}

type generator struct {
	rnd     *rand.Rand
	cfg     GenConfig
	nextVar int
	helpers []string // helper function names

	// scopes of in-scope scalar variable names
	scopes [][]string
	// loopVars in scope (always < arraySize)
	loopVars []string

	sb    strings.Builder
	depth int
}

const arrayName = "g"
const arraySize = 8

func (g *generator) program() string {
	fmt.Fprintf(&g.sb, "var %s[%d];\nvar total;\n\n", arrayName, arraySize)

	for i := 0; i < g.cfg.Helpers; i++ {
		name := fmt.Sprintf("h%d", i)
		// The body may call only earlier helpers (no recursion): the
		// helper joins g.helpers after its body is generated.
		fmt.Fprintf(&g.sb, "func %s(x) {\n", name)
		g.pushScope("x")
		g.line(1, fmt.Sprintf("return %s;", g.expr(2)))
		g.popScope()
		fmt.Fprintf(&g.sb, "}\n\n")
		g.helpers = append(g.helpers, name)
	}

	fmt.Fprintf(&g.sb, "func main() {\n")
	g.pushScope()
	n := 2 + g.rnd.Intn(g.cfg.MaxStmts)
	for i := 0; i < n; i++ {
		g.stmt(1)
	}
	// Always observe some state so slices have seeds.
	g.line(1, "print(total);")
	g.line(1, fmt.Sprintf("print(%s[%d]);", arrayName, g.rnd.Intn(arraySize)))
	g.popScope()
	fmt.Fprintf(&g.sb, "}\n")
	return g.sb.String()
}

func (g *generator) pushScope(vars ...string) {
	g.scopes = append(g.scopes, vars)
}

func (g *generator) popScope() {
	g.scopes = g.scopes[:len(g.scopes)-1]
}

func (g *generator) declare() string {
	name := fmt.Sprintf("v%d", g.nextVar)
	g.nextVar++
	top := len(g.scopes) - 1
	g.scopes[top] = append(g.scopes[top], name)
	return name
}

// assignable returns the in-scope variables that may be written: loop
// counters are excluded so array indexing stays in bounds.
func (g *generator) assignable() []string {
	loop := map[string]bool{}
	for _, v := range g.loopVars {
		loop[v] = true
	}
	var res []string
	for _, v := range g.inScope() {
		if !loop[v] {
			res = append(res, v)
		}
	}
	return res
}

func (g *generator) inScope() []string {
	var all []string
	for _, sc := range g.scopes {
		all = append(all, sc...)
	}
	all = append(all, "total")
	return all
}

func (g *generator) line(depth int, s string) {
	g.sb.WriteString(strings.Repeat("    ", depth))
	g.sb.WriteString(s)
	g.sb.WriteByte('\n')
}

func (g *generator) stmt(depth int) {
	roll := g.rnd.Intn(100)
	switch {
	case roll < 25: // declaration (init generated first: not yet in scope)
		init := g.expr(depth)
		name := g.declare()
		g.line(depth, fmt.Sprintf("var %s = %s;", name, init))
	case roll < 45: // assignment (never to a loop counter: indices stay safe)
		vars := g.assignable()
		target := vars[g.rnd.Intn(len(vars))]
		ops := []string{"=", "+=", "-=", "^="}
		g.line(depth, fmt.Sprintf("%s %s %s;", target, ops[g.rnd.Intn(len(ops))], g.expr(depth)))
	case roll < 55: // array write (safe index)
		g.line(depth, fmt.Sprintf("%s[%s] = %s;", arrayName, g.index(), g.expr(depth)))
	case roll < 70 && depth < g.cfg.MaxDepth: // if / if-else
		g.line(depth, fmt.Sprintf("if (%s) {", g.expr(depth)))
		g.block(depth + 1)
		if g.rnd.Intn(2) == 0 {
			g.line(depth, "} else {")
			g.block(depth + 1)
		}
		g.line(depth, "}")
	case roll < 85 && depth < g.cfg.MaxDepth: // bounded for
		iv := fmt.Sprintf("i%d", g.nextVar)
		g.nextVar++
		trips := 1 + g.rnd.Intn(arraySize)
		g.line(depth, fmt.Sprintf("for (var %s = 0; %s < %d; %s++) {", iv, iv, trips, iv))
		g.loopVars = append(g.loopVars, iv)
		g.pushScope(iv)
		g.block(depth + 1)
		// occasionally break/continue guarded by a condition
		if g.rnd.Intn(3) == 0 {
			kw := "continue"
			if g.rnd.Intn(2) == 0 {
				kw = "break"
			}
			g.line(depth+1, fmt.Sprintf("if (%s) { %s; }", g.expr(depth+1), kw))
		}
		g.popScope()
		g.loopVars = g.loopVars[:len(g.loopVars)-1]
		g.line(depth, "}")
	case roll < 92: // print
		g.line(depth, fmt.Sprintf("print(%s);", g.expr(depth)))
	default: // accumulate into total (keeps data flowing to the output)
		g.line(depth, fmt.Sprintf("total = total + %s;", g.expr(depth)))
	}
}

func (g *generator) block(depth int) {
	g.pushScope()
	n := 1 + g.rnd.Intn(3)
	for i := 0; i < n; i++ {
		g.stmt(depth)
	}
	g.popScope()
}

// index produces an always-in-bounds array index.
func (g *generator) index() string {
	if len(g.loopVars) > 0 && g.rnd.Intn(2) == 0 {
		return g.loopVars[g.rnd.Intn(len(g.loopVars))]
	}
	return fmt.Sprintf("%d", g.rnd.Intn(arraySize))
}

func (g *generator) expr(depth int) string {
	if depth >= g.cfg.MaxExprDepth+1 || g.rnd.Intn(3) == 0 {
		return g.atom()
	}
	switch g.rnd.Intn(10) {
	case 0, 1:
		ops := []string{"+", "-", "*", "&", "|", "^"}
		return fmt.Sprintf("(%s %s %s)", g.expr(depth+1), ops[g.rnd.Intn(len(ops))], g.expr(depth+1))
	case 2:
		cmp := []string{"<", "<=", ">", ">=", "==", "!="}
		return fmt.Sprintf("(%s %s %s)", g.expr(depth+1), cmp[g.rnd.Intn(len(cmp))], g.expr(depth+1))
	case 3:
		// safe modulo / division by a nonzero literal
		op := "%"
		if g.rnd.Intn(2) == 0 {
			op = "/"
		}
		return fmt.Sprintf("(%s %s %d)", g.expr(depth+1), op, 2+g.rnd.Intn(7))
	case 4:
		logic := []string{"&&", "||"}
		return fmt.Sprintf("(%s %s %s)", g.expr(depth+1), logic[g.rnd.Intn(2)], g.expr(depth+1))
	case 5:
		// 0-x rather than -x: a negative-literal atom would lex as "--".
		return fmt.Sprintf("(0 - %s)", g.atom())
	case 6:
		if len(g.helpers) > 0 {
			h := g.helpers[g.rnd.Intn(len(g.helpers))]
			return fmt.Sprintf("%s(%s)", h, g.expr(depth+1))
		}
		return g.atom()
	case 7:
		return fmt.Sprintf("(%s << %d)", g.atom(), g.rnd.Intn(5))
	default:
		ops := []string{"+", "-", "*"}
		return fmt.Sprintf("(%s %s %s)", g.expr(depth+1), ops[g.rnd.Intn(len(ops))], g.expr(depth+1))
	}
}

func (g *generator) atom() string {
	switch g.rnd.Intn(6) {
	case 0:
		return fmt.Sprintf("%d", g.rnd.Intn(20)-5)
	case 1:
		return "read()"
	case 2:
		return fmt.Sprintf("%s[%s]", arrayName, g.index())
	default:
		vars := g.inScope()
		return vars[g.rnd.Intn(len(vars))]
	}
}

// RandomInput generates an input vector for generated programs.
func RandomInput(rnd *rand.Rand, n int) []int64 {
	in := make([]int64, n)
	for i := range in {
		in[i] = int64(rnd.Intn(41) - 20)
	}
	return in
}
