package testsupport_test

import (
	"strings"
	"testing"

	"eol/internal/interp"
	"eol/internal/testsupport"
)

func compile(t *testing.T, src string) *interp.Compiled {
	t.Helper()
	c, err := interp.Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return c
}

// TestValidateRejectsIllFormed: Error-severity findings make a subject
// unusable as a benchmark or property-test input.
func TestValidateRejectsIllFormed(t *testing.T) {
	c := compile(t, `
func f() {
	return 1;
	print(2);
}
func main() {
	print(f());
}`)
	err := testsupport.Validate(c)
	if err == nil || !strings.Contains(err.Error(), "EOL0003") {
		t.Errorf("Validate = %v, want EOL0003 rejection", err)
	}
}

// TestValidateToleratesWarnings: benchmark faults deliberately look
// suspicious (dead stores, unused flags), so warnings must pass.
func TestValidateToleratesWarnings(t *testing.T) {
	c := compile(t, `
func main() {
	var x = read();
	x = 2;
	x = 3;
	print(x);
}`)
	if err := testsupport.Validate(c); err != nil {
		t.Errorf("Validate rejected a warning-only subject: %v", err)
	}
}
