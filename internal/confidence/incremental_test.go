package confidence

// Differential coverage for the incremental re-propagation path: an
// analyzer driven through AddEdges/Pin deltas must report exactly the
// confidences, slice and candidate ranking of a from-scratch analyzer
// over the same final graph — for any interleaving of edge additions and
// pins. This is the contract that lets Algorithm 2's re-prune step touch
// only the invalidated cone (see the package doc).

import (
	"math/rand"
	"testing"

	"eol/internal/ddg"
	"eol/internal/interp"
	"eol/internal/testsupport"
	"eol/internal/trace"
)

// assertAnalyzersAgree compares every observable of the two analyzers.
func assertAnalyzersAgree(t *testing.T, label string, inc, full *Analyzer, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if ci, cf := inc.Confidence(i), full.Confidence(i); ci != cf {
			t.Fatalf("%s: confidence(%d) = %v incremental, %v full", label, i, ci, cf)
		}
	}
	ic, fc := inc.FaultCandidates(), full.FaultCandidates()
	if len(ic) != len(fc) {
		t.Fatalf("%s: %d candidates incremental, %d full", label, len(ic), len(fc))
	}
	for i := range ic {
		if ic[i] != fc[i] {
			t.Fatalf("%s: candidate %d = %+v incremental, %+v full", label, i, ic[i], fc[i])
		}
	}
	is, fs := inc.Slice().Ordered(), full.Slice().Ordered()
	if len(is) != len(fs) {
		t.Fatalf("%s: slice sizes %d incremental, %d full", label, len(is), len(fs))
	}
	for i := range is {
		if is[i] != fs[i] {
			t.Fatalf("%s: slice entry %d = %d incremental, %d full", label, i, is[i], fs[i])
		}
	}
}

// TestIncrementalMatchesFullFuzz drives paired analyzers — one
// incremental, one recomputing from scratch after every change — through
// random sequences of edge additions and pins over generated programs.
func TestIncrementalMatchesFullFuzz(t *testing.T) {
	rnd := rand.New(rand.NewSource(12507342))
	subjects := 0
	var incReeval, fullReeval int64
	for i := 0; i < 80 && subjects < 20; i++ {
		src := testsupport.RandomProgram(rnd, testsupport.GenConfig{})
		c, err := interp.Compile(src)
		if err != nil {
			t.Fatalf("generator produced a bad program: %v", err)
		}
		in := testsupport.RandomInput(rnd, 24)
		r := interp.Run(c, interp.Options{Input: in, BuildTrace: true})
		if r.Err != nil || r.Trace == nil || len(r.Trace.Outputs) < 2 {
			continue
		}
		subjects++
		tr := r.Trace

		// Last output plays the wrong one; the rest are correct.
		wrong := *tr.OutputAt(len(tr.Outputs) - 1)
		var correct []trace.Output
		for j := 0; j < len(tr.Outputs)-1; j++ {
			correct = append(correct, *tr.OutputAt(j))
		}

		inc := New(c, ddg.New(tr), nil, correct, wrong)
		inc.Incremental = true
		full := New(c, ddg.New(tr), nil, correct, wrong)
		inc.Compute()
		full.Compute()
		assertAnalyzersAgree(t, "initial", inc, full, tr.Len())

		// Random delta rounds: the same edges and pins go to both sides;
		// only inc is allowed to take the delta path.
		for round := 0; round < 6; round++ {
			for k := rnd.Intn(3) + 1; k > 0; k-- {
				from := rnd.Intn(tr.Len())
				if from == 0 {
					continue
				}
				to := rnd.Intn(from) // DAG invariant: from > to
				kind := ddg.Implicit
				if rnd.Intn(2) == 0 {
					kind = ddg.StrongImplicit
				}
				inc.AddEdges(Arc{From: from, To: to, Kind: kind})
				full.AddEdges(Arc{From: from, To: to, Kind: kind})
			}
			if rnd.Intn(2) == 0 {
				e := rnd.Intn(tr.Len())
				inc.Pin(e)
				full.Pin(e)
			}
			inc.Compute()
			full.Compute()
			assertAnalyzersAgree(t, "round", inc, full, tr.Len())
		}

		// Both sides count re-prune passes; only the incremental side may
		// re-evaluate fewer entries than passes × trace length.
		ip, ir := inc.RepropStats()
		fp, fr := full.RepropStats()
		if ip == 0 || fp == 0 {
			t.Fatalf("re-prune passes not counted (inc %d, full %d)", ip, fp)
		}
		if fr != int64(fp)*int64(tr.Len()) {
			t.Fatalf("full analyzer re-evaluated %d entries over %d passes of %d", fr, fp, tr.Len())
		}
		incReeval += ir
		fullReeval += fr
	}
	if subjects < 10 {
		t.Fatalf("only %d usable subjects; generator too tame", subjects)
	}
	// The whole point: across the corpus, the delta path re-evaluates far
	// fewer entries than from-scratch recomputation.
	if incReeval >= fullReeval {
		t.Errorf("incremental re-evaluated %d entries, full %d: no win", incReeval, fullReeval)
	}
	t.Logf("re-evaluated entries: %d incremental vs %d full", incReeval, fullReeval)
}

// TestKindsChangeForcesFullRecompute: widening Kinds after a delta-driven
// Compute must fall back to a full pass and still agree with a fresh
// analyzer.
func TestKindsChangeForcesFullRecompute(t *testing.T) {
	rnd := rand.New(rand.NewSource(7))
	src := testsupport.RandomProgram(rnd, testsupport.GenConfig{})
	c, err := interp.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	var r *interp.Result
	for try := 0; try < 40; try++ {
		r = interp.Run(c, interp.Options{Input: testsupport.RandomInput(rnd, 24), BuildTrace: true})
		if r.Err == nil && r.Trace != nil && len(r.Trace.Outputs) >= 2 {
			break
		}
		r = nil
	}
	if r == nil {
		t.Skip("no usable run")
	}
	tr := r.Trace
	wrong := *tr.OutputAt(len(tr.Outputs) - 1)
	var correct []trace.Output
	for j := 0; j < len(tr.Outputs)-1; j++ {
		correct = append(correct, *tr.OutputAt(j))
	}

	inc := New(c, ddg.New(tr), nil, correct, wrong)
	inc.Incremental = true
	inc.Compute()
	inc.AddEdges(Arc{From: tr.Len() - 1, To: 0, Kind: ddg.Implicit})
	inc.Compute()
	inc.Kinds |= ddg.Potential // widen: next Compute must not trust the memo
	inc.Compute()

	full := New(c, ddg.New(tr), nil, correct, wrong)
	full.Kinds |= ddg.Potential
	full.AddEdges(Arc{From: tr.Len() - 1, To: 0, Kind: ddg.Implicit})
	full.Compute()
	assertAnalyzersAgree(t, "kinds-widened", inc, full, tr.Len())
}
