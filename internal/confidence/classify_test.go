package confidence

import (
	"math"
	"testing"

	"eol/internal/testsupport"
)

// classifySrc declares one statement per injectivity class; the tests
// check how each consumer's mapping constrains its operand.
const classifySrc = `
var arr[8];
func id(x) { return x; }
func main() {
    var a = read();
    var b = read();
    var copy = a;
    var plus = a + 3;
    var minusRev = 5 - a;
    var xorc = a ^ 12;
    var timesLit = a * 7;
    var timesZero = a * 0;
    var timesVar = a * b;
    var neg = -a;
    var inv = ~a;
    var mod = a % 4;
    var div = a / 4;
    var mask = a & 3;
    var cmp = a < 10;
    var orr = a | b;
    var shl = a << 2;
    var both = a + a;
    var called = id(a);
    arr[a % 8] = b;
    var notx = !a;
    print(copy, plus, minusRev, xorc, timesLit, timesZero, timesVar, neg,
          inv, mod, div, mask, cmp, orr, shl, both, called, notx);
}`

func classKindOf(t *testing.T, frag string) useClass {
	t.Helper()
	c := testsupport.Compile(t, classifySrc)
	id := testsupport.StmtID(t, c, frag)
	var aSym int = -1
	for _, s := range c.Info.Symbols {
		if s.Name == "a" {
			aSym = s.ID
		}
	}
	return classifyUse(c, id, aSym)
}

func TestClassifyInjective(t *testing.T) {
	for _, frag := range []string{
		"var copy = a",
		"var plus = a + 3",
		"var minusRev = 5 - a",
		"var xorc = a ^ 12",
		"var timesLit = a * 7",
		"var neg = -a",
		"var inv = ~a",
		"var timesVar = a * b", // injective in a given b fixed... b may be 0;
		// the structural rule only accepts literal multipliers — expect opaque.
	} {
		cls := classKindOf(t, frag)
		want := classInjective
		if frag == "var timesVar = a * b" {
			want = classOpaque
		}
		if cls.kind != want {
			t.Errorf("%q classified %v, want %v", frag, cls.kind, want)
		}
	}
}

func TestClassifyLossy(t *testing.T) {
	cases := []struct {
		frag string
		kind classKind
		k    int64
	}{
		{"var timesZero = a * 0", classOpaque, 0},
		{"var mod = a % 4", classMod, 4},
		{"var div = a / 4", classDiv, 4},
		{"var mask = a & 3", classMask, 3},
		{"var cmp = a < 10", classCompare, 0},
		{"var orr = a | b", classOpaque, 0},
		{"var shl = a << 2", classOpaque, 0},
		{"var both = a + a", classOpaque, 0}, // two occurrences
		{"var called = id(a)", classOpaque, 0},
		{"arr[a % 8] = b", classOpaque, 0}, // used only as an index
		{"var notx = !a", classCompare, 0},
	}
	for _, c := range cases {
		cls := classKindOf(t, c.frag)
		if cls.kind != c.kind {
			t.Errorf("%q classified %v, want %v", c.frag, cls.kind, c.kind)
			continue
		}
		if c.k != 0 && cls.k != c.k {
			t.Errorf("%q parameter %d, want %d", c.frag, cls.k, c.k)
		}
	}
}

func TestFactorFormula(t *testing.T) {
	// C = 1 - log|alt|/log|range|.
	rng := 16
	cases := []struct {
		cls  useClass
		want float64
	}{
		// %4: alt = 16/4 = 4 -> 1 - log4/log16 = 0.5
		{useClass{kind: classMod, k: 4}, 0.5},
		// /4: alt = 4 -> 0.5
		{useClass{kind: classDiv, k: 4}, 0.5},
		// compare: alt = 8 -> 1 - log8/log16 = 0.25
		{useClass{kind: classCompare}, 0.25},
		// opaque: no constraint
		{useClass{kind: classOpaque}, 0},
	}
	for _, c := range cases {
		got := c.cls.factor(rng)
		if math.Abs(got-c.want) > 1e-9 {
			t.Errorf("factor(%v, %d) = %v, want %v", c.cls.kind, rng, got, c.want)
		}
	}
	// Injective-but-unpinned keeps most of the constraint.
	if got := (useClass{kind: classInjective}).factor(rng); got < 0.8 {
		t.Errorf("injective factor = %v, want close to 1", got)
	}
	// Degenerate ranges never divide by zero.
	for _, cls := range []useClass{{kind: classMod, k: 2}, {kind: classCompare}} {
		if f := cls.factor(2); f < 0 || f > 1 {
			t.Errorf("factor out of range on tiny domain: %v", f)
		}
	}
}

func TestDegrade(t *testing.T) {
	inj := useClass{kind: classInjective}
	mod := useClass{kind: classMod, k: 4}
	cmp := useClass{kind: classCompare}
	if degrade(inj, mod) != mod {
		t.Error("injective inner inherits outer")
	}
	if degrade(mod, inj) != mod {
		t.Error("injective outer preserves inner")
	}
	if degrade(mod, cmp).kind != classOpaque {
		t.Error("two lossy stages collapse to opaque")
	}
}
