// Package confidence implements confidence analysis — the pruning and
// ranking substrate of the demand-driven locator, after "Pruning dynamic
// slices with confidence" (Zhang et al., PLDI 2006) as used by the
// PLDI 2007 paper.
//
// Each statement instance in the failing run receives a confidence value
// in [0,1]: the likelihood that it produced a *correct* value, inferred
// from the outputs the user has classified.
//
//   - Confidence 1 ("pinned") is established exactly: the values feeding
//     correct outputs are correct, and correctness propagates backward
//     through value mappings that are one-to-one in the operand (copy,
//     ±, ^, * by nonzero literal, unary -/~) provided the remaining
//     operands are themselves pinned. Instances the user marks benign are
//     pinned directly.
//   - Confidence 0 means no evidence: the instance influences only the
//     wrong output (Fig. 4's statement 30).
//   - Intermediate confidences follow the paper's range formula
//     C = 1 − log|alt| / log|range|, with |range| taken from value
//     profiles over passing test runs and |alt| estimated from the
//     injectivity class of the consuming operation (Fig. 4's statement
//     10: a many-to-one consumer like %k leaves range/k alternatives).
//
// Confidence propagates only along explicit and *verified implicit*
// dependence edges — never along unverified potential edges, which is
// precisely why the paper rejects the "relevant slicing + confidence"
// shortcut (§3.2): a false potential edge would launder confidence onto
// the root cause and sanitize it.
package confidence

import (
	"math"
	"sort"

	"eol/internal/ddg"
	"eol/internal/interp"
	"eol/internal/lang/ast"
	"eol/internal/lang/token"
	"eol/internal/trace"
)

// Profile holds value profiles: the set of values each statement was
// observed to produce across (passing) test executions. Range sizes feed
// the C = 1 − log|alt|/log|range| estimate.
type Profile struct {
	values map[int]map[int64]bool
}

// NewProfile creates an empty profile.
func NewProfile() *Profile { return &Profile{values: map[int]map[int64]bool{}} }

// AddTrace records the produced value of every defining instance.
func (p *Profile) AddTrace(t *trace.Trace) {
	for i := 0; i < t.Len(); i++ {
		e := t.At(i)
		if len(e.Defs) == 0 {
			continue
		}
		m := p.values[e.Inst.Stmt]
		if m == nil {
			m = map[int64]bool{}
			p.values[e.Inst.Stmt] = m
		}
		m[e.Value] = true
	}
}

// Values returns the observed values for stmt (unspecified order).
func (p *Profile) Values(stmt int) []int64 {
	if p == nil {
		return nil
	}
	var vs []int64
	for v := range p.values[stmt] {
		vs = append(vs, v)
	}
	return vs
}

// Range returns the observed value-range size for stmt, at least 2 (a
// singleton or unobserved statement still has an unknown domain).
func (p *Profile) Range(stmt int) int {
	if p == nil {
		return 2
	}
	n := len(p.values[stmt])
	if n < 2 {
		return 2
	}
	return n
}

// Analyzer computes confidences for one failing execution.
type Analyzer struct {
	C       *interp.Compiled
	G       *ddg.Graph
	Profile *Profile

	// CorrectOuts are output events the user classified as correct;
	// WrongOut is the first wrong output.
	CorrectOuts []trace.Output
	WrongOut    trace.Output

	// Kinds selects the dependence edges confidence flows along. It must
	// include only explicit and verified-implicit kinds — unless Naive is
	// set for the ablation below.
	Kinds ddg.Kind

	// Naive enables the "relevant slicing + confidence" shortcut the
	// paper warns against (§3.2): confidence-1 propagates across
	// *unverified potential* edges, and a confirmed predicate outcome
	// pins its operands. Used only by the ablation harness to demonstrate
	// that this sanitizes root causes.
	Naive bool

	benign map[int]bool

	// results of the last Compute
	conf   map[int]float64
	slice  map[int]bool
	pinned map[int]bool
	dist   map[int]int
}

// New prepares an analyzer over graph g with the classified outputs.
func New(c *interp.Compiled, g *ddg.Graph, prof *Profile, correct []trace.Output, wrong trace.Output) *Analyzer {
	return &Analyzer{
		C: c, G: g, Profile: prof,
		CorrectOuts: correct, WrongOut: wrong,
		Kinds:  ddg.Explicit | ddg.Implicit | ddg.StrongImplicit,
		benign: map[int]bool{},
	}
}

// MarkBenign pins entry at confidence 1 (the user inspected its program
// state and found it correct). Compute must be re-run afterwards.
func (a *Analyzer) MarkBenign(entry int) { a.benign[entry] = true }

// Benign reports whether entry was marked benign.
func (a *Analyzer) Benign(entry int) bool { return a.benign[entry] }

// Compute (re)computes confidences over the current graph and benign set.
func (a *Analyzer) Compute() {
	t := a.G.T
	a.slice = a.G.BackwardSlice(a.Kinds, a.WrongOut.Entry)
	a.dist = a.G.Distances(a.Kinds, a.WrongOut.Entry)

	// Entries influencing at least one correct output.
	correctClosure := map[int]bool{}
	for _, o := range a.CorrectOuts {
		for e := range a.G.BackwardSlice(a.Kinds, o.Entry) {
			correctClosure[e] = true
		}
	}

	// Exact pass: pinned set.
	a.pinned = a.computePinned(correctClosure)

	// Fractional pass, in reverse execution order so consumers are done
	// before their producers. Build the forward consumer lists once.
	type consumer struct {
		entry int
		kind  ddg.Kind
		sym   int
		elem  int64
	}
	consumers := make([][]consumer, t.Len())
	var buf []ddg.Edge
	for i := 0; i < t.Len(); i++ {
		e := t.At(i)
		for _, u := range e.Uses {
			if u.Def >= 0 {
				consumers[u.Def] = append(consumers[u.Def],
					consumer{entry: i, kind: ddg.Data, sym: u.Sym, elem: u.Elem})
			}
		}
		buf = a.G.Deps(i, a.Kinds&^ddg.Explicit, buf[:0])
		for _, ed := range buf {
			consumers[ed.To] = append(consumers[ed.To], consumer{entry: i, kind: ed.Kind})
		}
	}

	a.conf = map[int]float64{}
	for i := t.Len() - 1; i >= 0; i-- {
		if a.pinned[i] {
			a.conf[i] = 1
			continue
		}
		if !correctClosure[i] {
			a.conf[i] = 0 // no evidence of correctness (Fig. 4's C=0 case)
			continue
		}
		best := 0.0
		r := a.Profile.Range(t.At(i).Inst.Stmt)
		for _, c := range consumers[i] {
			cc, ok := a.conf[c.entry]
			if !ok {
				continue
			}
			var phi float64
			if c.kind == ddg.Data {
				cls := classifyUse(a.C, t.At(c.entry).Inst.Stmt, c.sym)
				phi = cls.factor(r)
			} else {
				// verified implicit edge: the consumer's branch outcome
				// constrains the producer like a comparison would
				phi = useClass{kind: classCompare}.factor(r)
			}
			if v := cc * phi; v > best {
				best = v
			}
		}
		if best > 1 {
			best = 1
		}
		if best >= 1 {
			best = 0.999 // exact 1 is reserved for the pinned set
		}
		a.conf[i] = best
	}
	for b := range a.benign {
		a.conf[b] = 1
	}
}

// computePinned runs the exact one-to-one fixpoint.
func (a *Analyzer) computePinned(correctClosure map[int]bool) map[int]bool {
	t := a.G.T
	pinned := map[int]bool{}
	for b := range a.benign {
		pinned[b] = true
	}
	// Seeds: definitions directly feeding a correct output. Print
	// statements are injective in each printed value, so the def of each
	// use of a correct print entry whose value was observed correct is
	// pinned. A print entry that produced the wrong output is never a
	// seed source for its wrong argument.
	wrongEntry, wrongArg := a.WrongOut.Entry, a.WrongOut.Arg
	for _, o := range a.CorrectOuts {
		if o.Entry == wrongEntry {
			continue // the failing print instance is never evidence
		}
		_ = wrongArg
		// The print instance itself was observed correct.
		pinned[o.Entry] = true
		// The printed value is Value of the def of the o.Arg-th use...
		// print arguments may be arbitrary expressions; only pin defs
		// when the argument is a direct variable read, i.e. the def's
		// produced value equals the printed value.
		for _, u := range t.At(o.Entry).Uses {
			if u.Def >= 0 && t.At(u.Def).Value == o.Value {
				pinned[u.Def] = true
			}
		}
	}

	// Fixpoint: pinned consumer + injective-in-operand + other operands
	// pinned => operand's def pinned. In Naive mode, pinned entries also
	// pin across unverified potential edges (the §3.2 pitfall).
	var buf []ddg.Edge
	for changed := true; changed; {
		changed = false
		for i := 0; i < t.Len(); i++ {
			if !pinned[i] {
				continue
			}
			if a.Naive {
				buf = a.G.Deps(i, ddg.Potential, buf[:0])
				for _, ed := range buf {
					if !pinned[ed.To] {
						pinned[ed.To] = true
						changed = true
					}
				}
			}
			e := t.At(i)
			if len(e.Defs) == 0 && len(e.Uses) == 0 {
				continue
			}
			for _, u := range e.Uses {
				if u.Def < 0 || pinned[u.Def] {
					continue
				}
				cls := classifyUse(a.C, e.Inst.Stmt, u.Sym)
				if a.Naive && cls.kind == classCompare {
					// A "confirmed" predicate outcome is naively taken to
					// confirm its operand.
					cls = useClass{kind: classInjective}
				}
				if cls.kind != classInjective {
					continue
				}
				othersPinned := true
				for _, v := range e.Uses {
					if v.Sym != u.Sym && v.Def >= 0 && !pinned[v.Def] {
						othersPinned = false
						break
					}
				}
				if othersPinned {
					pinned[u.Def] = true
					changed = true
				}
			}
		}
	}
	_ = correctClosure
	return pinned
}

// Confidence returns the confidence of entry (after Compute).
func (a *Analyzer) Confidence(entry int) float64 { return a.conf[entry] }

// Slice returns the current slice of the wrong output (after Compute).
func (a *Analyzer) Slice() map[int]bool { return a.slice }

// Candidate is a ranked fault candidate.
type Candidate struct {
	Entry int
	Conf  float64
	Dist  int
}

// FaultCandidates returns the pruned slice as a ranked list: entries of
// the wrong output's slice with confidence < 1, most suspicious first
// (lowest confidence, then smallest dependence distance to the failure,
// then latest execution).
func (a *Analyzer) FaultCandidates() []Candidate {
	var res []Candidate
	for e := range a.slice {
		if a.conf[e] >= 1 {
			continue
		}
		d, ok := a.dist[e]
		if !ok {
			d = math.MaxInt32
		}
		res = append(res, Candidate{Entry: e, Conf: a.conf[e], Dist: d})
	}
	sort.Slice(res, func(i, j int) bool {
		if res[i].Conf != res[j].Conf {
			return res[i].Conf < res[j].Conf
		}
		if res[i].Dist != res[j].Dist {
			return res[i].Dist < res[j].Dist
		}
		return res[i].Entry > res[j].Entry
	})
	return res
}

// PrunedStats summarizes the pruned slice in static/dynamic terms.
func (a *Analyzer) PrunedStats() ddg.SliceStats {
	pruned := map[int]bool{}
	for e := range a.slice {
		if a.conf[e] < 1 {
			pruned[e] = true
		}
	}
	return a.G.Stats(pruned)
}

// ---------------------------------------------------------------------------
// Injectivity classification

type classKind int

const (
	classInjective classKind = iota
	classMod                 // v % k: k residue classes survive
	classDiv                 // v / k: result pins v to a window of k values
	classMask                // v & m: popcount(m) bits survive
	classCompare             // relational/boolean outcome: one bit
	classOpaque              // calls, multiple occurrences, unsupported ops
)

type useClass struct {
	kind classKind
	k    int64 // parameter for Mod/Div/Mask
}

// factor converts the class into the paper's confidence formula
// C = 1 − log|alt|/log|range| for a consumer with a pinned result.
func (c useClass) factor(rng int) float64 {
	r := float64(rng)
	logr := math.Log(r)
	frac := func(alt float64) float64 {
		if alt <= 1 {
			return 1
		}
		if alt >= r {
			return 0
		}
		return 1 - math.Log(alt)/logr
	}
	switch c.kind {
	case classInjective:
		// Injective but the exact pass could not pin it (other operands
		// unpinned): most of the constraint survives.
		return frac(1.5)
	case classMod:
		k := float64(c.k)
		if k < 2 {
			return 0
		}
		return frac(r / k)
	case classDiv:
		return frac(float64(c.k))
	case classMask:
		bits := float64(popcount(uint64(c.k)))
		return frac(r / math.Max(2, math.Pow(2, bits)))
	case classCompare:
		return frac(r / 2)
	}
	return 0
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

// classifyUse determines how statement stmt's produced value constrains
// the value it read from symbol sym: the injectivity class of the value
// mapping from that operand to the statement's result.
func classifyUse(c *interp.Compiled, stmt, sym int) useClass {
	s := c.Info.Stmt(stmt)
	if s == nil || sym < 0 {
		return useClass{kind: classOpaque}
	}
	var expr ast.Expr
	switch n := s.(type) {
	case *ast.AssignStmt:
		if n.Op != token.ASSIGN {
			// compound assignment: result mixes old value and RHS; both
			// operands relate injectively for +=/-=/^=.
			switch n.Op.AssignOp() {
			case token.ADD, token.SUB, token.XOR:
				return useClass{kind: classInjective}
			default:
				return useClass{kind: classOpaque}
			}
		}
		expr = n.RHS
	case *ast.VarDeclStmt:
		expr = n.Init
	case *ast.ReturnStmt:
		expr = n.Value
	case *ast.PrintStmt:
		return useClass{kind: classInjective} // printed values are observed directly
	case *ast.IfStmt, *ast.WhileStmt, *ast.ForStmt:
		return useClass{kind: classCompare} // only the outcome bit is known
	default:
		return useClass{kind: classOpaque}
	}
	if expr == nil {
		return useClass{kind: classOpaque}
	}
	// Also account for index reads on the LHS of array assignments: a
	// value used only as an index is opaque from the result's viewpoint.
	occ := countOccurrences(c, expr, sym)
	if occ == 0 {
		return useClass{kind: classOpaque} // used elsewhere in the stmt (index, call arg)
	}
	if occ > 1 {
		return useClass{kind: classOpaque}
	}
	cls, ok := classifyExpr(c, expr, sym)
	if !ok {
		return useClass{kind: classOpaque}
	}
	return cls
}

// countOccurrences counts reads of sym inside e (variable or array base).
func countOccurrences(c *interp.Compiled, e ast.Expr, sym int) int {
	n := 0
	var walk func(x ast.Expr)
	walk = func(x ast.Expr) {
		switch v := x.(type) {
		case nil:
		case *ast.Ident:
			if s := c.Info.Uses[v]; s != nil && s.ID == sym {
				n++
			}
		case *ast.IndexExpr:
			if s := c.Info.Uses[v.X]; s != nil && s.ID == sym {
				n++
			}
			walk(v.Index)
		case *ast.UnaryExpr:
			walk(v.X)
		case *ast.BinaryExpr:
			walk(v.X)
			walk(v.Y)
		case *ast.CallExpr:
			for _, a := range v.Args {
				walk(a)
			}
		}
	}
	walk(e)
	return n
}

// classifyExpr computes the injectivity class of e in sym, assuming sym
// occurs exactly once. Returns ok == false if sym does not occur in e.
func classifyExpr(c *interp.Compiled, e ast.Expr, sym int) (useClass, bool) {
	switch x := e.(type) {
	case *ast.Ident:
		if s := c.Info.Uses[x]; s != nil && s.ID == sym {
			return useClass{kind: classInjective}, true
		}
	case *ast.IndexExpr:
		if s := c.Info.Uses[x.X]; s != nil && s.ID == sym {
			return useClass{kind: classInjective}, true
		}
		if _, ok := classifyExpr(c, x.Index, sym); ok {
			return useClass{kind: classOpaque}, true // sym selects the element
		}
	case *ast.UnaryExpr:
		if cls, ok := classifyExpr(c, x.X, sym); ok {
			switch x.Op {
			case token.SUB, token.TILD:
				return cls, true
			case token.NOT:
				return degrade(cls, useClass{kind: classCompare}), true
			}
		}
	case *ast.BinaryExpr:
		inX, okX := classifyExpr(c, x.X, sym)
		inY, okY := classifyExpr(c, x.Y, sym)
		if !okX && !okY {
			return useClass{}, false
		}
		var inner useClass
		var other ast.Expr
		if okX {
			inner, other = inX, x.Y
		} else {
			inner, other = inY, x.X
		}
		switch x.Op {
		case token.ADD, token.SUB, token.XOR:
			return inner, true
		case token.MUL:
			if lit, ok := other.(*ast.IntLit); ok && lit.Value != 0 {
				return inner, true
			}
			return degrade(inner, useClass{kind: classOpaque}), true
		case token.REM:
			if okX {
				if lit, ok := other.(*ast.IntLit); ok && lit.Value > 1 {
					return degrade(inner, useClass{kind: classMod, k: lit.Value}), true
				}
			}
			return degrade(inner, useClass{kind: classOpaque}), true
		case token.QUO:
			if okX {
				if lit, ok := other.(*ast.IntLit); ok && lit.Value > 1 {
					return degrade(inner, useClass{kind: classDiv, k: lit.Value}), true
				}
			}
			return degrade(inner, useClass{kind: classOpaque}), true
		case token.AND:
			if lit, ok := other.(*ast.IntLit); ok {
				return degrade(inner, useClass{kind: classMask, k: lit.Value}), true
			}
			return degrade(inner, useClass{kind: classOpaque}), true
		case token.SHL, token.SHR, token.OR:
			return degrade(inner, useClass{kind: classOpaque}), true
		case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ,
			token.LAND, token.LOR:
			return degrade(inner, useClass{kind: classCompare}), true
		}
	case *ast.CallExpr:
		for _, a := range x.Args {
			if _, ok := classifyExpr(c, a, sym); ok {
				return useClass{kind: classOpaque}, true
			}
		}
	}
	return useClass{}, false
}

// degrade composes an inner class with an outer constraint: an injective
// inner mapping inherits the outer class; anything weaker becomes opaque
// (two lossy stages are not tracked).
func degrade(inner, outer useClass) useClass {
	if inner.kind == classInjective {
		return outer
	}
	if outer.kind == classInjective {
		return inner
	}
	return useClass{kind: classOpaque}
}
