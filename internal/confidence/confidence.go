// Package confidence implements confidence analysis — the pruning and
// ranking substrate of the demand-driven locator, after "Pruning dynamic
// slices with confidence" (Zhang et al., PLDI 2006) as used by the
// PLDI 2007 paper.
//
// Each statement instance in the failing run receives a confidence value
// in [0,1]: the likelihood that it produced a *correct* value, inferred
// from the outputs the user has classified.
//
//   - Confidence 1 ("pinned") is established exactly: the values feeding
//     correct outputs are correct, and correctness propagates backward
//     through value mappings that are one-to-one in the operand (copy,
//     ±, ^, * by nonzero literal, unary -/~) provided the remaining
//     operands are themselves pinned. Instances the user marks benign are
//     pinned directly.
//   - Confidence 0 means no evidence: the instance influences only the
//     wrong output (Fig. 4's statement 30).
//   - Intermediate confidences follow the paper's range formula
//     C = 1 − log|alt| / log|range|, with |range| taken from value
//     profiles over passing test runs and |alt| estimated from the
//     injectivity class of the consuming operation (Fig. 4's statement
//     10: a many-to-one consumer like %k leaves range/k alternatives).
//
// Confidence propagates only along explicit and *verified implicit*
// dependence edges — never along unverified potential edges, which is
// precisely why the paper rejects the "relevant slicing + confidence"
// shortcut (§3.2): a false potential edge would launder confidence onto
// the root cause and sanitize it.
//
// # Incremental re-propagation
//
// Algorithm 2 calls Compute after every expansion wave and every benign
// verdict, but each such step changes the graph by a handful of overlay
// edges or pins one instance. When Incremental is set, edge additions
// routed through AddEdges and pins through Pin/MarkBenign are queued as
// deltas, and the next Compute touches only the invalidated cone: the
// slice/closure sets grow by the new edges' backward cones, distances
// relax decrease-only, the pinned fixpoint continues from the new pins
// (it is monotone, so continuation and from-scratch agree), and
// confidences re-evaluate along a worklist in decreasing entry order.
// Because every dependence edge points from a later entry to an earlier
// one, consumers always finalize before their producers, and the delta
// pass reproduces the full pass bit for bit — the same float operations
// on the same operands (see docs/DEPGRAPH.md for the argument). Any state
// the delta path cannot account for — Kinds or Naive changed, the graph
// mutated behind the analyzer's back — falls back to a full pass.
package confidence

import (
	"math"
	"sort"

	"eol/internal/ddg"
	"eol/internal/depgraph"
	"eol/internal/interp"
	"eol/internal/lang/ast"
	"eol/internal/lang/token"
	"eol/internal/trace"
)

// Profile holds value profiles: the set of values each statement was
// observed to produce across (passing) test executions. Range sizes feed
// the C = 1 − log|alt|/log|range| estimate.
type Profile struct {
	values map[int]map[int64]bool
}

// NewProfile creates an empty profile.
func NewProfile() *Profile { return &Profile{values: map[int]map[int64]bool{}} }

// AddTrace records the produced value of every defining instance.
func (p *Profile) AddTrace(t *trace.Trace) {
	for i := 0; i < t.Len(); i++ {
		e := t.At(i)
		if len(e.Defs) == 0 {
			continue
		}
		m := p.values[e.Inst.Stmt]
		if m == nil {
			m = map[int64]bool{}
			p.values[e.Inst.Stmt] = m
		}
		m[e.Value] = true
	}
}

// Values returns the observed values for stmt (unspecified order).
func (p *Profile) Values(stmt int) []int64 {
	if p == nil {
		return nil
	}
	var vs []int64
	for v := range p.values[stmt] {
		vs = append(vs, v)
	}
	return vs
}

// Range returns the observed value-range size for stmt, at least 2 (a
// singleton or unobserved statement still has an unknown domain).
func (p *Profile) Range(stmt int) int {
	if p == nil {
		return 2
	}
	n := len(p.values[stmt])
	if n < 2 {
		return 2
	}
	return n
}

// consumer is one reader of an entry's value: a data use or the source of
// an analysis-added edge pointing at the entry.
type consumer struct {
	entry int
	kind  ddg.Kind
	sym   int
}

// Arc is one analysis-added dependence edge routed through the analyzer,
// so an incremental Compute can re-propagate only its cone.
type Arc struct {
	From, To int
	Kind     ddg.Kind
}

// Analyzer computes confidences for one failing execution.
type Analyzer struct {
	C       *interp.Compiled
	G       *ddg.Graph
	Profile *Profile

	// CorrectOuts are output events the user classified as correct;
	// WrongOut is the first wrong output.
	CorrectOuts []trace.Output
	WrongOut    trace.Output

	// Kinds selects the dependence edges confidence flows along. It must
	// include only explicit and verified-implicit kinds — unless Naive is
	// set for the ablation below.
	Kinds ddg.Kind

	// Naive enables the "relevant slicing + confidence" shortcut the
	// paper warns against (§3.2): confidence-1 propagates across
	// *unverified potential* edges, and a confirmed predicate outcome
	// pins its operands. Used only by the ablation harness to demonstrate
	// that this sanitizes root causes. Naive mode always recomputes fully.
	Naive bool

	// Incremental enables delta re-propagation: Compute after the first
	// touches only the cone invalidated by queued AddEdges/Pin deltas.
	// Results are identical to a full recomputation either way; only cost
	// differs (RepropStats).
	Incremental bool

	benign map[int]bool

	// Results of the last Compute.
	conf   []float64
	slice  *depgraph.Set
	pinned []bool
	dist   []int32
	cc     *depgraph.Set // union closure of the correct outputs

	consumers [][]consumer

	computed   bool
	compKinds  ddg.Kind // Kinds value the cached state was computed under
	accVersion uint64   // graph version the cached state accounts for

	pendingArcs []Arc
	pendingPins []int

	// Re-propagation accounting (RepropStats): Compute passes after the
	// first, and confidence entries re-evaluated by them.
	passes int
	reeval int64
}

// New prepares an analyzer over graph g with the classified outputs.
func New(c *interp.Compiled, g *ddg.Graph, prof *Profile, correct []trace.Output, wrong trace.Output) *Analyzer {
	return &Analyzer{
		C: c, G: g, Profile: prof,
		CorrectOuts: correct, WrongOut: wrong,
		Kinds:  ddg.Explicit | ddg.Implicit | ddg.StrongImplicit,
		benign: map[int]bool{},
	}
}

// AddEdges records analysis-added dependence edges in the graph and
// queues them as deltas for the next Compute. Duplicate edges are
// ignored. This is the edge-addition entry point Algorithm 2's expansion
// must use for incremental re-pruning to see the change; edges added
// directly on the graph still work but force the next Compute to fall
// back to a full pass.
func (a *Analyzer) AddEdges(arcs ...Arc) {
	for _, arc := range arcs {
		if a.G.AddEdge(arc.From, arc.To, arc.Kind) {
			a.pendingArcs = append(a.pendingArcs, arc)
			a.accVersion = a.G.Version()
		}
	}
}

// Pin marks entry as known-correct (the user inspected its program state
// and found it benign): confidence 1 after the next Compute.
func (a *Analyzer) Pin(entry int) {
	if !a.benign[entry] {
		a.benign[entry] = true
		a.pendingPins = append(a.pendingPins, entry)
	}
}

// MarkBenign is the historical name for Pin.
func (a *Analyzer) MarkBenign(entry int) { a.Pin(entry) }

// Benign reports whether entry was marked benign.
func (a *Analyzer) Benign(entry int) bool { return a.benign[entry] }

// RepropStats reports the re-propagation cost of Compute calls after the
// first: how many such passes ran and how many confidence entries they
// re-evaluated in total. A delta pass counts its dirty set; a full pass
// counts the whole trace — so the ratio reeval/(passes·len(trace)) is the
// run's mean dirty fraction, 1.0 when Incremental is off.
func (a *Analyzer) RepropStats() (passes int, reeval int64) { return a.passes, a.reeval }

// Compute (re)computes confidences over the current graph and benign set.
// With Incremental set and all changes routed through AddEdges/Pin since
// the previous pass, only the invalidated cone is re-evaluated.
func (a *Analyzer) Compute() {
	if a.computed && a.Incremental && !a.Naive &&
		a.Kinds == a.compKinds && a.G.Version() == a.accVersion {
		a.computeDelta()
		return
	}
	a.computeFull()
}

// computeFull recomputes every analysis artifact from scratch.
func (a *Analyzer) computeFull() {
	t := a.G.T
	n := t.Len()
	a.slice = a.G.BackwardSlice(a.Kinds, a.WrongOut.Entry)
	a.dist = a.G.Distances(a.Kinds, a.WrongOut.Entry)

	// Entries influencing at least one correct output.
	a.cc = depgraph.NewSet(n)
	for _, o := range a.CorrectOuts {
		a.G.Extend(a.cc, a.Kinds, o.Entry)
	}

	// Exact pass: pinned set.
	a.pinned = a.computePinned()

	// Fractional pass, in reverse execution order so consumers are done
	// before their producers.
	a.buildConsumers()
	a.conf = make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		a.conf[i] = a.confOf(i)
	}

	if a.computed {
		a.passes++
		a.reeval += int64(n)
	}
	a.computed = true
	a.compKinds = a.Kinds
	a.accVersion = a.G.Version()
	a.pendingArcs = a.pendingArcs[:0]
	a.pendingPins = a.pendingPins[:0]
}

// buildConsumers assembles the forward consumer lists: data uses from the
// trace plus analysis-added edges of the non-explicit kinds in Kinds.
func (a *Analyzer) buildConsumers() {
	t := a.G.T
	n := t.Len()
	a.consumers = make([][]consumer, n)
	for i := 0; i < n; i++ {
		e := t.At(i)
		for _, u := range e.Uses {
			if u.Def >= 0 {
				a.consumers[u.Def] = append(a.consumers[u.Def],
					consumer{entry: i, kind: ddg.Data, sym: u.Sym})
			}
		}
		from := i
		a.G.EachDep(i, a.Kinds&^ddg.Explicit, func(ed ddg.Edge) {
			a.consumers[ed.To] = append(a.consumers[ed.To], consumer{entry: from, kind: ed.Kind})
		})
	}
}

// confOf evaluates the confidence formula for entry i from the current
// pinned/closure/consumer state. Consumers at or below i are skipped —
// the reverse-order full pass never saw them (their confidence was not
// yet computed), and the delta pass must reproduce the full pass exactly.
func (a *Analyzer) confOf(i int) float64 {
	if a.pinned[i] {
		return 1
	}
	if !a.cc.Has(i) {
		return 0 // no evidence of correctness (Fig. 4's C=0 case)
	}
	t := a.G.T
	best := 0.0
	r := a.Profile.Range(t.At(i).Inst.Stmt)
	for _, c := range a.consumers[i] {
		if c.entry <= i {
			continue
		}
		cc := a.conf[c.entry]
		var phi float64
		if c.kind == ddg.Data {
			cls := classifyUse(a.C, t.At(c.entry).Inst.Stmt, c.sym)
			phi = cls.factor(r)
		} else {
			// verified implicit edge: the consumer's branch outcome
			// constrains the producer like a comparison would
			phi = useClass{kind: classCompare}.factor(r)
		}
		if v := cc * phi; v > best {
			best = v
		}
	}
	if best > 1 {
		best = 1
	}
	if best >= 1 {
		best = 0.999 // exact 1 is reserved for the pinned set
	}
	return best
}

// computePinned runs the exact one-to-one fixpoint from scratch.
func (a *Analyzer) computePinned() []bool {
	t := a.G.T
	n := t.Len()
	pinned := make([]bool, n)
	for b := range a.benign {
		if b >= 0 && b < n {
			pinned[b] = true
		}
	}
	// Seeds: definitions directly feeding a correct output. Print
	// statements are injective in each printed value, so the def of each
	// use of a correct print entry whose value was observed correct is
	// pinned. A print entry that produced the wrong output is never a
	// seed source for its wrong argument.
	wrongEntry := a.WrongOut.Entry
	for _, o := range a.CorrectOuts {
		if o.Entry == wrongEntry {
			continue // the failing print instance is never evidence
		}
		// The print instance itself was observed correct.
		pinned[o.Entry] = true
		// print arguments may be arbitrary expressions; only pin defs
		// when the argument is a direct variable read, i.e. the def's
		// produced value equals the printed value.
		for _, u := range t.At(o.Entry).Uses {
			if u.Def >= 0 && t.At(u.Def).Value == o.Value {
				pinned[u.Def] = true
			}
		}
	}

	// Fixpoint: pinned consumer + injective-in-operand + other operands
	// pinned => operand's def pinned. In Naive mode, pinned entries also
	// pin across unverified potential edges (the §3.2 pitfall). The
	// closure is monotone, so the scan order does not affect the result.
	for changed := true; changed; {
		changed = false
		for i := 0; i < n; i++ {
			if !pinned[i] {
				continue
			}
			if a.Naive {
				a.G.EachDep(i, ddg.Potential, func(ed ddg.Edge) {
					if !pinned[ed.To] {
						pinned[ed.To] = true
						changed = true
					}
				})
			}
			a.tryPinUses(i, pinned, func(int) { changed = true })
		}
	}
	return pinned
}

// tryPinUses applies the one-to-one rule at pinned consumer i: an operand
// whose mapping to i's result is injective, with every other operand
// pinned, has its definition pinned. onPin is invoked for each newly
// pinned definition.
func (a *Analyzer) tryPinUses(i int, pinned []bool, onPin func(def int)) {
	e := a.G.T.At(i)
	if len(e.Defs) == 0 && len(e.Uses) == 0 {
		return
	}
	for _, u := range e.Uses {
		if u.Def < 0 || pinned[u.Def] {
			continue
		}
		cls := classifyUse(a.C, e.Inst.Stmt, u.Sym)
		if a.Naive && cls.kind == classCompare {
			// A "confirmed" predicate outcome is naively taken to
			// confirm its operand.
			cls = useClass{kind: classInjective}
		}
		if cls.kind != classInjective {
			continue
		}
		othersPinned := true
		for _, v := range e.Uses {
			if v.Sym != u.Sym && v.Def >= 0 && !pinned[v.Def] {
				othersPinned = false
				break
			}
		}
		if othersPinned {
			pinned[u.Def] = true
			onPin(u.Def)
		}
	}
}

// computeDelta re-propagates only the cone invalidated by the queued
// deltas. Equivalence with computeFull rests on three facts: the closure
// sets and distances are unique (so incremental growth/relaxation lands
// on the same sets), the pinned fixpoint is monotone (so continuation
// from the new pins reaches the same least fixpoint), and every edge
// points from a later entry to an earlier one (so re-evaluating dirty
// confidences in decreasing entry order sees exactly the consumer values
// a full reverse-order pass would see).
func (a *Analyzer) computeDelta() {
	t := a.G.T
	n := t.Len()
	extraKinds := a.Kinds &^ ddg.Explicit

	dirty := depgraph.NewSet(n)
	var work maxHeap
	push := func(i int) {
		if i >= 0 && i < n && dirty.Add(i) {
			work.push(i)
		}
	}

	// Structure deltas: new consumers, slice/closure growth, distance
	// relaxation. The closure growth loops to a fixpoint because one
	// arc's extension can pull another arc's source into the set; the
	// traversal itself already runs over the fully-updated graph.
	for _, arc := range a.pendingArcs {
		if arc.Kind&extraKinds != 0 {
			a.consumers[arc.To] = append(a.consumers[arc.To],
				consumer{entry: arc.From, kind: arc.Kind})
			push(arc.To)
		}
	}
	for changed := true; changed; {
		changed = false
		for _, arc := range a.pendingArcs {
			if arc.Kind&a.Kinds == 0 {
				continue
			}
			if a.slice.Has(arc.From) && !a.slice.Has(arc.To) {
				a.G.Extend(a.slice, a.Kinds, arc.To)
				changed = true
			}
			if a.cc.Has(arc.From) && !a.cc.Has(arc.To) {
				for _, e := range a.G.Extend(a.cc, a.Kinds, arc.To) {
					push(e)
				}
				changed = true
			}
			a.G.Relax(a.dist, a.Kinds, arc.From, arc.To)
		}
	}

	// Pinned fixpoint continuation: examine each newly pinned entry as a
	// consumer, and re-examine its already-pinned data consumers (the new
	// pin may be the "other operand" that unlocks them).
	var pinWork []int
	onPin := func(p int) {
		pinWork = append(pinWork, p)
		push(p)
	}
	for _, p := range a.pendingPins {
		if p >= 0 && p < n && !a.pinned[p] {
			a.pinned[p] = true
			onPin(p)
		}
	}
	for len(pinWork) > 0 {
		d := pinWork[len(pinWork)-1]
		pinWork = pinWork[:len(pinWork)-1]
		a.tryPinUses(d, a.pinned, onPin)
		for _, c := range a.consumers[d] {
			if c.kind == ddg.Data && a.pinned[c.entry] {
				a.tryPinUses(c.entry, a.pinned, onPin)
			}
		}
	}

	// Confidence re-propagation in decreasing entry order: a changed
	// value dirties the entry's producers, which sit strictly below it.
	processed := 0
	for work.len() > 0 {
		i := work.pop()
		processed++
		nv := a.confOf(i)
		if nv != a.conf[i] {
			a.conf[i] = nv
			for _, u := range t.At(i).Uses {
				if u.Def >= 0 {
					push(u.Def)
				}
			}
			a.G.EachDep(i, extraKinds, func(ed ddg.Edge) { push(ed.To) })
		}
	}

	a.passes++
	a.reeval += int64(processed)
	a.accVersion = a.G.Version()
	a.pendingArcs = a.pendingArcs[:0]
	a.pendingPins = a.pendingPins[:0]
}

// Confidence returns the confidence of entry (after Compute).
func (a *Analyzer) Confidence(entry int) float64 {
	if entry < 0 || entry >= len(a.conf) {
		return 0
	}
	return a.conf[entry]
}

// Slice returns the current slice of the wrong output (after Compute).
func (a *Analyzer) Slice() *depgraph.Set { return a.slice }

// Candidate is a ranked fault candidate.
type Candidate struct {
	Entry int
	Conf  float64
	Dist  int
}

// FaultCandidates returns the pruned slice as a ranked list: entries of
// the wrong output's slice with confidence < 1, most suspicious first
// (lowest confidence, then smallest dependence distance to the failure,
// then latest execution).
func (a *Analyzer) FaultCandidates() []Candidate {
	var res []Candidate
	a.slice.ForEach(func(e int) {
		if a.conf[e] >= 1 {
			return
		}
		d := math.MaxInt32
		if dd := a.dist[e]; dd >= 0 {
			d = int(dd)
		}
		res = append(res, Candidate{Entry: e, Conf: a.conf[e], Dist: d})
	})
	sortCandidates(res)
	return res
}

// sortCandidates orders candidates most suspicious first: lowest
// confidence, then smallest dependence distance, then latest execution —
// the ranking both FaultCandidates and PredictCandidates present.
func sortCandidates(res []Candidate) {
	sort.Slice(res, func(i, j int) bool {
		if res[i].Conf != res[j].Conf {
			return res[i].Conf < res[j].Conf
		}
		if res[i].Dist != res[j].Dist {
			return res[i].Dist < res[j].Dist
		}
		return res[i].Entry > res[j].Entry
	})
}

// PredictCandidates previews the fault-candidate ranking the NEXT Compute
// is likely to produce, without running it: the stale post-last-Compute
// ranking plus the targets of dependence edges queued through AddEdges
// since then (new predicates about to be pulled into the slice by the
// delta pass's cone growth). It reads only analyzer state maintained on
// the caller's goroutine and mutates nothing, so the locator can consult
// it between Compute calls — this is the prediction source of the
// speculative verification pipeline (docs/SPECULATION.md).
//
// The preview is best-effort by design: the next Compute may re-rank,
// admit or prune entries the preview missed. Callers must treat a
// predicted candidate as a hint (a wasted speculative run is warm cache,
// not a wrong verdict), never as an analysis result. k > 0 truncates to
// the top k; k <= 0 returns the full preview.
func (a *Analyzer) PredictCandidates(k int) []Candidate {
	if !a.computed {
		return nil
	}
	res := a.FaultCandidates()
	seen := make(map[int]bool, len(res))
	for _, c := range res {
		seen[c.Entry] = true
	}
	for _, arc := range a.pendingArcs {
		if arc.Kind&a.Kinds == 0 {
			continue
		}
		e := arc.To
		if e < 0 || e >= len(a.conf) || seen[e] || a.conf[e] >= 1 {
			continue
		}
		seen[e] = true
		d := math.MaxInt32
		if dd := a.dist[e]; dd >= 0 {
			d = int(dd)
		}
		res = append(res, Candidate{Entry: e, Conf: a.conf[e], Dist: d})
	}
	sortCandidates(res)
	if k > 0 && len(res) > k {
		res = res[:k]
	}
	return res
}

// PrunedStats summarizes the pruned slice in static/dynamic terms.
func (a *Analyzer) PrunedStats() ddg.SliceStats {
	pruned := depgraph.NewSet(a.G.T.Len())
	a.slice.ForEach(func(e int) {
		if a.conf[e] < 1 {
			pruned.Add(e)
		}
	})
	return a.G.Stats(pruned)
}

// maxHeap is a simple binary max-heap of entry indices, used to drain the
// dirty set in decreasing order.
type maxHeap []int

func (h maxHeap) len() int { return len(h) }

func (h *maxHeap) push(i int) {
	*h = append(*h, i)
	s := *h
	c := len(s) - 1
	for c > 0 {
		p := (c - 1) / 2
		if s[p] >= s[c] {
			break
		}
		s[p], s[c] = s[c], s[p]
		c = p
	}
}

func (h *maxHeap) pop() int {
	s := *h
	top := s[0]
	last := len(s) - 1
	s[0] = s[last]
	s = s[:last]
	*h = s
	p := 0
	for {
		c := 2*p + 1
		if c >= len(s) {
			break
		}
		if c+1 < len(s) && s[c+1] > s[c] {
			c++
		}
		if s[p] >= s[c] {
			break
		}
		s[p], s[c] = s[c], s[p]
		p = c
	}
	return top
}

// ---------------------------------------------------------------------------
// Injectivity classification

type classKind int

const (
	classInjective classKind = iota
	classMod                 // v % k: k residue classes survive
	classDiv                 // v / k: result pins v to a window of k values
	classMask                // v & m: popcount(m) bits survive
	classCompare             // relational/boolean outcome: one bit
	classOpaque              // calls, multiple occurrences, unsupported ops
)

type useClass struct {
	kind classKind
	k    int64 // parameter for Mod/Div/Mask
}

// factor converts the class into the paper's confidence formula
// C = 1 − log|alt|/log|range| for a consumer with a pinned result.
func (c useClass) factor(rng int) float64 {
	r := float64(rng)
	logr := math.Log(r)
	frac := func(alt float64) float64 {
		if alt <= 1 {
			return 1
		}
		if alt >= r {
			return 0
		}
		return 1 - math.Log(alt)/logr
	}
	switch c.kind {
	case classInjective:
		// Injective but the exact pass could not pin it (other operands
		// unpinned): most of the constraint survives.
		return frac(1.5)
	case classMod:
		k := float64(c.k)
		if k < 2 {
			return 0
		}
		return frac(r / k)
	case classDiv:
		return frac(float64(c.k))
	case classMask:
		bits := float64(popcount(uint64(c.k)))
		return frac(r / math.Max(2, math.Pow(2, bits)))
	case classCompare:
		return frac(r / 2)
	}
	return 0
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

// classifyUse determines how statement stmt's produced value constrains
// the value it read from symbol sym: the injectivity class of the value
// mapping from that operand to the statement's result.
func classifyUse(c *interp.Compiled, stmt, sym int) useClass {
	s := c.Info.Stmt(stmt)
	if s == nil || sym < 0 {
		return useClass{kind: classOpaque}
	}
	var expr ast.Expr
	switch n := s.(type) {
	case *ast.AssignStmt:
		if n.Op != token.ASSIGN {
			// compound assignment: result mixes old value and RHS; both
			// operands relate injectively for +=/-=/^=.
			switch n.Op.AssignOp() {
			case token.ADD, token.SUB, token.XOR:
				return useClass{kind: classInjective}
			default:
				return useClass{kind: classOpaque}
			}
		}
		expr = n.RHS
	case *ast.VarDeclStmt:
		expr = n.Init
	case *ast.ReturnStmt:
		expr = n.Value
	case *ast.PrintStmt:
		return useClass{kind: classInjective} // printed values are observed directly
	case *ast.IfStmt, *ast.WhileStmt, *ast.ForStmt:
		return useClass{kind: classCompare} // only the outcome bit is known
	default:
		return useClass{kind: classOpaque}
	}
	if expr == nil {
		return useClass{kind: classOpaque}
	}
	// Also account for index reads on the LHS of array assignments: a
	// value used only as an index is opaque from the result's viewpoint.
	occ := countOccurrences(c, expr, sym)
	if occ == 0 {
		return useClass{kind: classOpaque} // used elsewhere in the stmt (index, call arg)
	}
	if occ > 1 {
		return useClass{kind: classOpaque}
	}
	cls, ok := classifyExpr(c, expr, sym)
	if !ok {
		return useClass{kind: classOpaque}
	}
	return cls
}

// countOccurrences counts reads of sym inside e (variable or array base).
func countOccurrences(c *interp.Compiled, e ast.Expr, sym int) int {
	n := 0
	var walk func(x ast.Expr)
	walk = func(x ast.Expr) {
		switch v := x.(type) {
		case nil:
		case *ast.Ident:
			if s := c.Info.Uses[v]; s != nil && s.ID == sym {
				n++
			}
		case *ast.IndexExpr:
			if s := c.Info.Uses[v.X]; s != nil && s.ID == sym {
				n++
			}
			walk(v.Index)
		case *ast.UnaryExpr:
			walk(v.X)
		case *ast.BinaryExpr:
			walk(v.X)
			walk(v.Y)
		case *ast.CallExpr:
			for _, a := range v.Args {
				walk(a)
			}
		}
	}
	walk(e)
	return n
}

// classifyExpr computes the injectivity class of e in sym, assuming sym
// occurs exactly once. Returns ok == false if sym does not occur in e.
func classifyExpr(c *interp.Compiled, e ast.Expr, sym int) (useClass, bool) {
	switch x := e.(type) {
	case *ast.Ident:
		if s := c.Info.Uses[x]; s != nil && s.ID == sym {
			return useClass{kind: classInjective}, true
		}
	case *ast.IndexExpr:
		if s := c.Info.Uses[x.X]; s != nil && s.ID == sym {
			return useClass{kind: classInjective}, true
		}
		if _, ok := classifyExpr(c, x.Index, sym); ok {
			return useClass{kind: classOpaque}, true // sym selects the element
		}
	case *ast.UnaryExpr:
		if cls, ok := classifyExpr(c, x.X, sym); ok {
			switch x.Op {
			case token.SUB, token.TILD:
				return cls, true
			case token.NOT:
				return degrade(cls, useClass{kind: classCompare}), true
			}
		}
	case *ast.BinaryExpr:
		inX, okX := classifyExpr(c, x.X, sym)
		inY, okY := classifyExpr(c, x.Y, sym)
		if !okX && !okY {
			return useClass{}, false
		}
		var inner useClass
		var other ast.Expr
		if okX {
			inner, other = inX, x.Y
		} else {
			inner, other = inY, x.X
		}
		switch x.Op {
		case token.ADD, token.SUB, token.XOR:
			return inner, true
		case token.MUL:
			if lit, ok := other.(*ast.IntLit); ok && lit.Value != 0 {
				return inner, true
			}
			return degrade(inner, useClass{kind: classOpaque}), true
		case token.REM:
			if okX {
				if lit, ok := other.(*ast.IntLit); ok && lit.Value > 1 {
					return degrade(inner, useClass{kind: classMod, k: lit.Value}), true
				}
			}
			return degrade(inner, useClass{kind: classOpaque}), true
		case token.QUO:
			if okX {
				if lit, ok := other.(*ast.IntLit); ok && lit.Value > 1 {
					return degrade(inner, useClass{kind: classDiv, k: lit.Value}), true
				}
			}
			return degrade(inner, useClass{kind: classOpaque}), true
		case token.AND:
			if lit, ok := other.(*ast.IntLit); ok {
				return degrade(inner, useClass{kind: classMask, k: lit.Value}), true
			}
			return degrade(inner, useClass{kind: classOpaque}), true
		case token.SHL, token.SHR, token.OR:
			return degrade(inner, useClass{kind: classOpaque}), true
		case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ,
			token.LAND, token.LOR:
			return degrade(inner, useClass{kind: classCompare}), true
		}
	case *ast.CallExpr:
		for _, a := range x.Args {
			if _, ok := classifyExpr(c, a, sym); ok {
				return useClass{kind: classOpaque}, true
			}
		}
	}
	return useClass{}, false
}

// degrade composes an inner class with an outer constraint: an injective
// inner mapping inherits the outer class; anything weaker becomes opaque
// (two lossy stages are not tracked).
func degrade(inner, outer useClass) useClass {
	if inner.kind == classInjective {
		return outer
	}
	if outer.kind == classInjective {
		return inner
	}
	return useClass{kind: classOpaque}
}
