package confidence

import (
	"testing"

	"eol/internal/ddg"
	"eol/internal/interp"
	"eol/internal/testsupport"
	"eol/internal/trace"
)

// fig4Src is the paper's Figure 4:
//
//  10. a = ...        C = f(range(a))
//  20. b = a % 2;     C = 1
//  30. c = a + 2;     C = 0
//  40. print(b)       correct
//  41. print(c)       wrong
const fig4Src = `
func main() {
    var a = read();
    var b = a % 2;
    var c = a + 2;
    print(b);
    print(c);
}`

// fig4 returns an analyzer for the Figure 4 run with a = 1 and a profile
// over a ∈ {1,3,5,7}.
func fig4(t *testing.T) (*Analyzer, *interp.Compiled, *trace.Trace) {
	t.Helper()
	c := testsupport.Compile(t, fig4Src)
	prof := NewProfile()
	for _, v := range []int64{1, 3, 5, 7} {
		prof.AddTrace(testsupport.Run(t, c, []int64{v}).Trace)
	}
	r := testsupport.Run(t, c, []int64{1})
	g := ddg.New(r.Trace)
	// print(b) produced 1 (correct); print(c) produced 3, expected 5.
	correct := []trace.Output{*r.Trace.OutputAt(0)}
	wrong := *r.Trace.OutputAt(1)
	a := New(c, g, prof, correct, wrong)
	a.Compute()
	return a, c, r.Trace
}

func entryOf(t *testing.T, c *interp.Compiled, tr *trace.Trace, frag string) int {
	t.Helper()
	id := testsupport.StmtID(t, c, frag)
	i := tr.FindInstance(trace.Instance{Stmt: id, Occ: 1})
	if i < 0 {
		t.Fatalf("instance of %q not found", frag)
	}
	return i
}

func TestFig4Confidences(t *testing.T) {
	a, c, tr := fig4(t)

	b := entryOf(t, c, tr, "var b = a % 2")
	cc := entryOf(t, c, tr, "var c = a + 2")
	av := entryOf(t, c, tr, "var a = read()")

	if got := a.Confidence(b); got != 1 {
		t.Errorf("C(b = a %% 2) = %v, want 1 (feeds the correct output)", got)
	}
	if got := a.Confidence(cc); got != 0 {
		t.Errorf("C(c = a + 2) = %v, want 0 (influences only the wrong output)", got)
	}
	got := a.Confidence(av)
	if got <= 0 || got >= 1 {
		t.Errorf("C(a) = %v, want fractional (range-based, Fig. 4's statement 10)", got)
	}
	// With range 4 and a %2 consumer, alt = range/2 = 2: C = 1 - log2/log4 = 0.5.
	if got < 0.45 || got > 0.55 {
		t.Errorf("C(a) = %v, want ≈0.5 for range 4 under %%2", got)
	}
}

func TestFig4Ranking(t *testing.T) {
	a, c, tr := fig4(t)
	cands := a.FaultCandidates()
	if len(cands) < 3 {
		t.Fatalf("candidates = %v, want ≥3", cands)
	}
	// Most suspicious first: the wrong print (conf 0, dist 0), then
	// c = a+2 (conf 0, dist 1), then a (fractional).
	wrongPrint := entryOf(t, c, tr, "print(c)")
	cc := entryOf(t, c, tr, "var c = a + 2")
	av := entryOf(t, c, tr, "var a = read()")
	if cands[0].Entry != wrongPrint {
		t.Errorf("top candidate = %d, want the wrong print %d", cands[0].Entry, wrongPrint)
	}
	if cands[1].Entry != cc {
		t.Errorf("second candidate = %d, want c=a+2 at %d", cands[1].Entry, cc)
	}
	if cands[2].Entry != av {
		t.Errorf("third candidate = %d, want a at %d", cands[2].Entry, av)
	}
	// The pinned b-assignment must be pruned from the candidates.
	b := entryOf(t, c, tr, "var b = a % 2")
	for _, cand := range cands {
		if cand.Entry == b {
			t.Errorf("pinned entry %d must be pruned from candidates", b)
		}
	}
}

// TestOneToOneChain: correctness propagates through a chain of invertible
// operations and pins the whole chain.
func TestOneToOneChain(t *testing.T) {
	src := `
func main() {
    var a = read();
    var b = a + 3;
    var c = b ^ 5;
    var d = -c;
    var e = a * 0;    // root cause feeding the wrong output
    print(d);
    print(e);
}`
	c := testsupport.Compile(t, src)
	r := testsupport.Run(t, c, []int64{7})
	g := ddg.New(r.Trace)
	a := New(c, g, NewProfile(), []trace.Output{*r.Trace.OutputAt(0)}, *r.Trace.OutputAt(1))
	a.Compute()

	for _, frag := range []string{"var a = read()", "var b = a + 3", "var c = b ^ 5", "var d = -c"} {
		e := entryOf(t, c, r.Trace, frag)
		if got := a.Confidence(e); got != 1 {
			t.Errorf("C(%s) = %v, want 1 (one-to-one chain to correct output)", frag, got)
		}
	}
	bad := entryOf(t, c, r.Trace, "var e = a * 0")
	if got := a.Confidence(bad); got != 0 {
		t.Errorf("C(e = a*0) = %v, want 0", got)
	}
	// The candidate list must now be tiny: the wrong print and e only.
	cands := a.FaultCandidates()
	if len(cands) != 2 {
		t.Errorf("candidates = %v, want exactly the wrong print and e", cands)
	}
}

// TestUnpinnedOperandBlocksExactPropagation: y = a + b with only y's
// value evidenced correct cannot pin either operand exactly.
func TestUnpinnedOperandBlocksExactPropagation(t *testing.T) {
	src := `
func main() {
    var a = read();
    var b = read();
    var y = a + b;
    var w = a - 100;
    print(y);
    print(w);
}`
	c := testsupport.Compile(t, src)
	r := testsupport.Run(t, c, []int64{3, 4})
	g := ddg.New(r.Trace)
	a := New(c, g, NewProfile(), []trace.Output{*r.Trace.OutputAt(0)}, *r.Trace.OutputAt(1))
	a.Compute()

	av := entryOf(t, c, r.Trace, "var a = read()")
	bv := entryOf(t, c, r.Trace, "var b = read()")
	if got := a.Confidence(av); got >= 1 {
		t.Errorf("C(a) = %v, want < 1 (sibling operand b unpinned)", got)
	}
	if got := a.Confidence(bv); got >= 1 {
		t.Errorf("C(b) = %v, want < 1", got)
	}
	// But both still get partial credit (injective consumers).
	if got := a.Confidence(av); got <= 0 {
		t.Errorf("C(a) = %v, want > 0", got)
	}
}

// TestMarkBenign: marking an instance benign pins it and, through the
// one-to-one fixpoint, unlocks exact propagation to its sibling operand.
func TestMarkBenign(t *testing.T) {
	src := `
func main() {
    var a = read();
    var b = read();
    var y = a + b;
    var w = b * 0;
    print(y);
    print(w);
}`
	c := testsupport.Compile(t, src)
	r := testsupport.Run(t, c, []int64{3, 4})
	g := ddg.New(r.Trace)
	an := New(c, g, NewProfile(), []trace.Output{*r.Trace.OutputAt(0)}, *r.Trace.OutputAt(1))
	an.Compute()

	av := entryOf(t, c, r.Trace, "var a = read()")
	bv := entryOf(t, c, r.Trace, "var b = read()")
	if an.Confidence(bv) >= 1 {
		t.Fatalf("precondition: b unpinned, got %v", an.Confidence(bv))
	}
	an.MarkBenign(av)
	an.Compute()
	if got := an.Confidence(av); got != 1 {
		t.Errorf("benign a: C = %v, want 1", got)
	}
	if got := an.Confidence(bv); got != 1 {
		t.Errorf("after pinning a, y's other operand b should pin too; C = %v", got)
	}
}

// TestNoPropagationOverPotentialEdges: confidence must flow only along
// explicit and verified-implicit edges; an (unverified) potential edge
// must not launder confidence (the paper's §3.2 argument).
func TestNoPropagationOverPotentialEdges(t *testing.T) {
	c := testsupport.Compile(t, testsupport.Fig1Faulty)
	r := testsupport.Run(t, c, testsupport.Fig1Input)
	g := ddg.New(r.Trace)

	// Add the FALSE potential edge S7 -> S9-style: from the correct
	// print to the second if.
	tr := r.Trace
	correct := []trace.Output{*tr.OutputAt(0)}
	wrong := *tr.OutputAt(1)
	an := New(c, g, NewProfile(), correct, wrong)
	an.Compute()

	// The root cause entry:
	root := entryOf(t, c, tr, "read() * 0")
	if got := an.Confidence(root); got >= 1 {
		t.Fatalf("root cause pinned before adding edges: %v", got)
	}

	// Even adding a potential edge from the correct print to the root
	// cause must not change its confidence, because Kinds excludes
	// Potential.
	g.AddEdge(correct[0].Entry, root, ddg.Potential)
	an.Compute()
	if got := an.Confidence(root); got >= 1 {
		t.Errorf("potential edge laundered confidence onto the root cause: %v", got)
	}
}

func TestProfileRange(t *testing.T) {
	p := NewProfile()
	if p.Range(1) != 2 {
		t.Errorf("empty profile range = %d, want 2", p.Range(1))
	}
	c := testsupport.Compile(t, fig4Src)
	for _, v := range []int64{2, 4, 6, 8, 10} {
		p.AddTrace(testsupport.Run(t, c, []int64{v}).Trace)
	}
	aID := testsupport.StmtID(t, c, "var a = read()")
	if got := p.Range(aID); got != 5 {
		t.Errorf("range(a) = %d, want 5", got)
	}
	var nilProf *Profile
	if nilProf.Range(1) != 2 {
		t.Error("nil profile must default to range 2")
	}
}
