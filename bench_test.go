// Benchmarks regenerating the paper's evaluation tables as testing.B
// targets. Each table has a dedicated benchmark family; run them all
// with:
//
//	go test -bench=. -benchmem
//
// Table 4 is special: its Plain/Graph/Verification columns literally are
// the BenchmarkTable4* measurements (ns/op of the three execution modes).
package eol

import (
	"fmt"
	"io"
	"os"
	"strings"
	"testing"

	"eol/internal/bench"
	"eol/internal/cfg"
	"eol/internal/confidence"
	"eol/internal/core"
	"eol/internal/critpred"
	"eol/internal/ddg"
	"eol/internal/harness"
	"eol/internal/implicit"
	"eol/internal/interp"
	"eol/internal/lang/ast"
	"eol/internal/obs"
	"eol/internal/oracle"
	"eol/internal/slicing"
	"eol/internal/staticdep"
	"eol/internal/trace"
	"eol/internal/verifyengine"
)

// readFile loads a benchmark fixture or fails the benchmark.
func readFile(b *testing.B, path string) string {
	b.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		b.Fatal(err)
	}
	return string(data)
}

// prepared caches benchmark-case preparation across benchmarks.
var prepared = map[string]*bench.Prepared{}

func prep(b *testing.B, name string) *bench.Prepared {
	b.Helper()
	if p, ok := prepared[name]; ok {
		return p
	}
	c := bench.ByName(name)
	if c == nil {
		b.Fatalf("unknown case %s", name)
	}
	p, err := c.Prepare()
	if err != nil {
		b.Fatal(err)
	}
	prepared[name] = p
	return p
}

func allCaseNames() []string {
	var names []string
	for _, c := range bench.Cases() {
		names = append(names, c.Name())
	}
	return names
}

// BenchmarkTable1Characteristics times the benchmark-inventory pass.
func BenchmarkTable1Characteristics(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := harness.Table1()
		if len(rows) != 4 {
			b.Fatal("bad table")
		}
	}
}

// BenchmarkTable2Slicing regenerates Table 2: per case, the classic
// dynamic slice (DS) and the relevant slice (RS) of the wrong output.
func BenchmarkTable2Slicing(b *testing.B) {
	for _, name := range allCaseNames() {
		p := prep(b, name)
		seq, _, ok := slicing.FirstWrongOutput(p.Run.OutputValues(), p.Expected)
		if !ok {
			b.Fatal("no failure")
		}
		seed := slicing.FailureSeeds(p.Run.Trace, seq)

		b.Run(name+"/DS", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				g := ddg.New(p.Run.Trace)
				if slicing.Dynamic(g, seed).Len() == 0 {
					b.Fatal("empty slice")
				}
			}
		})
		b.Run(name+"/RS", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cx := slicing.NewContext(p.Faulty, p.Run.Trace)
				g := ddg.New(p.Run.Trace)
				if cx.Relevant(g, seed).Len() == 0 {
					b.Fatal("empty slice")
				}
			}
		})
		b.Run(name+"/PS", func(b *testing.B) {
			var correct []trace.Output
			for i := 0; i < seq; i++ {
				correct = append(correct, *p.Run.Trace.OutputAt(i))
			}
			wrong := *p.Run.Trace.OutputAt(seq)
			for i := 0; i < b.N; i++ {
				g := ddg.New(p.Run.Trace)
				an := confidence.New(p.Faulty, g, p.Profile, correct, wrong)
				an.Compute()
				_ = an.FaultCandidates()
			}
		})
	}
}

// BenchmarkTable3Effectiveness regenerates Table 3: the full demand-
// driven localization per case.
func BenchmarkTable3Effectiveness(b *testing.B) {
	for _, name := range allCaseNames() {
		p := prep(b, name)
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rep, err := core.Locate(p.Spec())
				if err != nil {
					b.Fatal(err)
				}
				if !rep.Located {
					b.Fatalf("%s: not located", name)
				}
			}
		})
	}
}

// BenchmarkTable4Performance regenerates Table 4's three columns as
// separate measurements: Plain execution, Graph (traced) execution, and
// one Verification re-execution with alignment.
func BenchmarkTable4Performance(b *testing.B) {
	for _, name := range allCaseNames() {
		p := prep(b, name)
		in := p.Case.FailingInput

		b.Run(name+"/Plain", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := interp.Run(p.Faulty, interp.Options{Input: in})
				if r.Err != nil {
					b.Fatal(r.Err)
				}
			}
		})
		b.Run(name+"/Graph", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := interp.Run(p.Faulty, interp.Options{Input: in, BuildTrace: true})
				if r.Err != nil {
					b.Fatal(r.Err)
				}
			}
		})
		b.Run(name+"/Verify", func(b *testing.B) {
			seq, _, ok := slicing.FirstWrongOutput(p.Run.OutputValues(), p.Expected)
			if !ok {
				b.Fatal("no failure")
			}
			wrong := *p.Run.Trace.OutputAt(seq)
			// Verify one representative dependence: the wrong output on
			// the first preceding predicate instance with a potential
			// dependence.
			cx := slicing.NewContext(p.Faulty, p.Run.Trace)
			pds := cx.PotentialDeps(wrong.Entry)
			if len(pds) == 0 {
				b.Skip("no potential dependence at the wrong output")
			}
			req := implicit.Request{
				Pred: pds[0].Pred, Use: wrong.Entry,
				UseSym: pds[0].UseSym, UseElem: pds[0].UseElem,
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				v := &implicit.Verifier{
					C: p.Faulty, Input: in, Orig: p.Run.Trace,
					WrongOut: wrong, Vexp: p.Expected[seq], HasVexp: true,
				}
				v.VerifyDetailed(req)
			}
		})
	}
}

// verifyWorkload enumerates a realistic verification batch for one case:
// every potential dependence of every entry in the wrong output's dynamic
// slice — the candidates that repeated expand iterations of Algorithm 2
// feed to VerifyDep — capped at 96 requests. It also returns a factory
// for fresh verifiers over the failing run.
func verifyWorkload(b *testing.B, p *bench.Prepared) (func() *implicit.Verifier, []implicit.Request) {
	b.Helper()
	tr := p.Run.Trace
	seq, _, ok := slicing.FirstWrongOutput(p.Run.OutputValues(), p.Expected)
	if !ok {
		b.Fatal("no failure")
	}
	wrong := *tr.OutputAt(seq)
	newVerifier := func() *implicit.Verifier {
		v := &implicit.Verifier{
			C: p.Faulty, Input: p.Case.FailingInput, Orig: tr, WrongOut: wrong,
		}
		if seq < len(p.Expected) {
			v.Vexp, v.HasVexp = p.Expected[seq], true
		}
		return v
	}

	cx := slicing.NewContext(p.Faulty, tr)
	g := ddg.New(tr)
	slice := slicing.Dynamic(g, slicing.FailureSeeds(tr, seq))
	var reqs []implicit.Request
	for _, u := range ddg.SortedEntries(slice) {
		for _, pd := range cx.PotentialDeps(u) {
			reqs = append(reqs, implicit.Request{
				Pred: pd.Pred, Use: u, UseSym: pd.UseSym, UseElem: pd.UseElem,
			})
			if len(reqs) >= 96 {
				return newVerifier, reqs
			}
		}
	}
	return newVerifier, reqs
}

// BenchmarkVerifyEngine measures the verification hot path — the batch of
// switched re-executions + alignments behind one expand iteration — under
// the three scheduling modes of internal/verifyengine: sequential
// (workers=1, no cache), parallel (workers=4), and parallel + switched-run
// cache. The cached mode additionally reports its cache hit rate.
func BenchmarkVerifyEngine(b *testing.B) {
	modes := []struct {
		name             string
		workers, cacheSz int
	}{
		{"seq", 1, -1},
		{"par4", 4, -1},
		{"par4cache", 4, 0},
	}
	for _, name := range allCaseNames() {
		p := prep(b, name)
		newVerifier, reqs := verifyWorkload(b, p)
		if len(reqs) < 2 {
			continue
		}
		for _, m := range modes {
			b.Run(fmt.Sprintf("%s/%s", name, m.name), func(b *testing.B) {
				b.ReportMetric(float64(len(reqs)), "reqs")
				var last verifyengine.Stats
				for i := 0; i < b.N; i++ {
					e := verifyengine.New(newVerifier(),
						verifyengine.Config{Workers: m.workers, CacheSize: m.cacheSz})
					e.VerifyBatch(reqs)
					last = e.Stats()
				}
				if m.cacheSz >= 0 {
					b.ReportMetric(100*last.HitRate(), "hit%")
				}
			})
		}
	}
}

// BenchmarkVerifyEngineLocate measures full localizations under the same
// three scheduling modes — the end-to-end view, where verification is
// one phase among tracing, slicing and confidence analysis.
func BenchmarkVerifyEngineLocate(b *testing.B) {
	modes := []struct {
		name             string
		workers, cacheSz int
	}{
		{"seq", 1, -1},
		{"par4", 4, -1},
		{"par4cache", 4, 0},
	}
	for _, name := range allCaseNames() {
		p := prep(b, name)
		for _, m := range modes {
			b.Run(fmt.Sprintf("%s/%s", name, m.name), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					spec := p.Spec()
					spec.VerifyWorkers = m.workers
					spec.VerifyCacheSize = m.cacheSz
					rep, err := core.Locate(spec)
					if err != nil {
						b.Fatal(err)
					}
					if !rep.Located {
						b.Fatalf("%s: not located", name)
					}
				}
			})
		}
	}
}

// BenchmarkCheckpointReplay measures what checkpointed forking buys one
// switched re-execution — the unit of work BenchmarkVerifyEngine runs in
// batches — on a long trace (the scaled grep analog). Switch targets sit
// in the last quarter of the trace, where Algorithm 2's demand-driven
// expansion spends most verifications (candidates near the wrong
// output); "full" replays the program from the start, "fork" resumes
// from the nearest checkpoint. The suffix_steps/full_steps metrics show
// the replay saving behind the time difference.
func BenchmarkCheckpointReplay(b *testing.B) {
	p := prep(b, "grepsim/V4-F2")
	in := bench.ScaledGrepInput(400)
	st := interp.NewCheckpointStore(0)
	run := interp.Run(p.Faulty, interp.Options{Input: in, BuildTrace: true, Checkpoints: st})
	if run.Err != nil {
		b.Fatal(run.Err)
	}
	tr := run.Trace
	budget := 10*tr.Len() + 1000

	// Predicate instances in the last quarter of the trace.
	var preds []trace.Instance
	for i := tr.Len() * 3 / 4; i < tr.Len() && len(preds) < 8; i++ {
		if e := tr.At(i); e.Branch != cfg.None {
			preds = append(preds, e.Inst)
		}
	}
	if len(preds) == 0 {
		b.Fatal("no late predicates in the scaled trace")
	}

	b.Run("full", func(b *testing.B) {
		var steps int
		for i := 0; i < b.N; i++ {
			r := implicit.RunSwitchedContext(nil, p.Faulty, in, preds[i%len(preds)], budget)
			if r.Err != nil {
				b.Fatal(r.Err)
			}
			steps = r.Steps
		}
		b.ReportMetric(float64(steps), "full_steps")
	})
	b.Run("fork", func(b *testing.B) {
		var suffix int
		for i := 0; i < b.N; i++ {
			pred := preds[i%len(preds)]
			r := interp.RunSwitchedFromStore(st, tr, p.Faulty, interp.Options{
				Input:      in,
				Switch:     &interp.SwitchPlan{Stmt: pred.Stmt, Occ: pred.Occ},
				StepBudget: budget,
			})
			if r == nil {
				b.Fatal("no checkpoint before a late predicate")
			}
			if r.Err != nil {
				b.Fatal(r.Err)
			}
			suffix = r.Steps - r.ResumedAt
		}
		b.ReportMetric(float64(suffix), "suffix_steps")
	})
}

// BenchmarkRepruneIncremental measures what incremental re-pruning buys
// a full localization: Algorithm 2's re-prune step after each expansion
// iteration either re-propagates only the dirty cone invalidated by the
// newly verified edges (inc) or recomputes confidence over the whole
// slice from scratch (full). The Reports are identical either way
// (internal/core TestIncrementalDeterminismBench); this measures the
// cost difference on the multi-iteration cases.
func BenchmarkRepruneIncremental(b *testing.B) {
	for _, name := range []string{"grepsim/V4-F2", "sedsim/V3-F2", "sedsim/V3-F3"} {
		p := prep(b, name)
		for _, mode := range []struct {
			label string
			noInc bool
		}{{"full", true}, {"inc", false}} {
			b.Run(fmt.Sprintf("%s/%s", name, mode.label), func(b *testing.B) {
				var reeval int64
				var frac float64
				for i := 0; i < b.N; i++ {
					spec := p.Spec()
					spec.NoIncremental = mode.noInc
					rep, err := core.Locate(spec)
					if err != nil {
						b.Fatal(err)
					}
					if !rep.Located {
						b.Fatalf("%s: not located", name)
					}
					reeval = rep.Stats.Repropagated
					frac = rep.Stats.DirtyFraction
				}
				b.ReportMetric(float64(reeval), "reeval/op")
				b.ReportMetric(frac, "dirtyfrac")
			})
		}
	}
}

// BenchmarkSpeculation is the speculation on/off ablation: the same
// multi-round localizations with and without speculative verification
// overlapped with re-prune. The Reports are identical either way
// (internal/core TestSpeculationDeterminismBench); what differs is when
// the switched runs execute. spec_hits/op counts demand lookups served
// by a finished speculative run — verification latency hidden behind
// the re-prune phase; spec_issued/op is the total speculative work.
// On a single-CPU host wall-clock gains are bounded by the re-prune
// compute overlap, so read the custom metrics, not just ns/op, when
// cores are scarce.
func BenchmarkSpeculation(b *testing.B) {
	for _, name := range []string{"grepsim/V4-F2", "sedsim/V3-F2", "sedsim/V3-F3"} {
		p := prep(b, name)
		for _, mode := range []struct {
			label string
			on    bool
		}{{"off", false}, {"on", true}} {
			b.Run(fmt.Sprintf("%s/%s", name, mode.label), func(b *testing.B) {
				var issued, hits int64
				for i := 0; i < b.N; i++ {
					spec := p.Spec()
					spec.VerifyWorkers = 4
					if mode.on {
						spec.Features.Speculation = core.FeatureOn
					}
					rep, err := core.Locate(spec)
					if err != nil {
						b.Fatal(err)
					}
					if !rep.Located {
						b.Fatalf("%s: not located", name)
					}
					issued, hits = rep.Stats.SpecIssued, rep.Stats.SpecHits
				}
				// Only the scaled grep case is guaranteed speculative
				// traffic; the sed cases report whatever their round
				// structure yields (V3-F3 converges with none).
				if mode.on && name == "grepsim/V4-F2" && hits == 0 {
					b.Fatalf("%s: speculation never hit (issued %d)", name, issued)
				}
				b.ReportMetric(float64(issued), "spec_issued/op")
				b.ReportMetric(float64(hits), "spec_hits/op")
			})
		}
	}
}

// BenchmarkObserverOverhead measures what observation costs a full
// localization: nil observer (the fast path every unobserved run takes)
// vs a JSONL journal to io.Discard vs the in-memory timeline sink. The
// nil mode is the one the <5% overhead budget in docs/OBSERVABILITY.md
// is measured against.
func BenchmarkObserverOverhead(b *testing.B) {
	modes := []struct {
		name string
		mk   func() obs.Observer
	}{
		{"nil", func() obs.Observer { return nil }},
		{"journal", func() obs.Observer { return obs.NewJournal(io.Discard) }},
		{"memory", func() obs.Observer { return &obs.Memory{} }},
	}
	for _, name := range []string{"gzipsim/V2-F3", "sedsim/V3-F2"} {
		p := prep(b, name)
		for _, m := range modes {
			b.Run(fmt.Sprintf("%s/%s", name, m.name), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					spec := p.Spec()
					spec.VerifyWorkers = 1
					spec.Observer = m.mk()
					rep, err := core.Locate(spec)
					if err != nil {
						b.Fatal(err)
					}
					if !rep.Located {
						b.Fatalf("%s: not located", name)
					}
				}
			})
		}
	}
}

// BenchmarkAblationRSConfidence times the naive relevant-slicing +
// confidence combination (§3.2) on the Fig. 1 case.
func BenchmarkAblationRSConfidence(b *testing.B) {
	p := prep(b, "gzipsim/V2-F3")
	seq, _, _ := slicing.FirstWrongOutput(p.Run.OutputValues(), p.Expected)
	var correct []trace.Output
	for i := 0; i < seq; i++ {
		correct = append(correct, *p.Run.Trace.OutputAt(i))
	}
	wrong := *p.Run.Trace.OutputAt(seq)
	for i := 0; i < b.N; i++ {
		cx := slicing.NewContext(p.Faulty, p.Run.Trace)
		g := ddg.New(p.Run.Trace)
		cx.Relevant(g, slicing.FailureSeeds(p.Run.Trace, seq))
		an := confidence.New(p.Faulty, g, p.Profile, correct, wrong)
		an.Kinds |= ddg.Potential
		an.Naive = true
		an.Compute()
	}
}

// BenchmarkAblationEdgesVsPaths compares the two VerifyDep modes on the
// case where they differ most (gzipsim).
func BenchmarkAblationEdgesVsPaths(b *testing.B) {
	p := prep(b, "gzipsim/V2-F3")
	for _, mode := range []struct {
		name string
		path bool
	}{{"edges", false}, {"paths", true}} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				spec := p.Spec()
				spec.PathMode = mode.path
				rep, err := core.Locate(spec)
				if err != nil {
					b.Fatal(err)
				}
				if !rep.Located {
					b.Fatal("not located")
				}
			}
		})
	}
}

// BenchmarkAblationCritPred times the ICSE 2006 critical-predicate
// search baseline against the locator on the same case.
func BenchmarkAblationCritPred(b *testing.B) {
	p := prep(b, "flexsim/V1-F9")
	b.Run("critpred", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res := critpred.Search(p.Faulty, p.Case.FailingInput, p.Expected,
				critpred.Options{Strategy: critpred.Prior})
			if !res.Found {
				b.Fatal("not found")
			}
		}
	})
	b.Run("locator", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rep, err := core.Locate(p.Spec())
			if err != nil || !rep.Located {
				b.Fatalf("locate failed: %v", err)
			}
		}
	})
}

// BenchmarkAlignment times Algorithm 1 in isolation: matching the wrong
// output point across a switched re-execution of the grep analog.
func BenchmarkAlignment(b *testing.B) {
	p := prep(b, "grepsim/V4-F2")
	seq, _, _ := slicing.FirstWrongOutput(p.Run.OutputValues(), p.Expected)
	wrong := *p.Run.Trace.OutputAt(seq)
	cx := slicing.NewContext(p.Faulty, p.Run.Trace)
	pds := cx.PotentialDeps(wrong.Entry)
	if len(pds) == 0 {
		b.Skip("no potential dependence")
	}
	pe := p.Run.Trace.At(pds[0].Pred)
	sw := interp.Run(p.Faulty, interp.Options{
		Input: p.Case.FailingInput, BuildTrace: true,
		Switch: &interp.SwitchPlan{Stmt: pe.Inst.Stmt, Occ: pe.Inst.Occ},
	})
	if sw.Err != nil {
		b.Fatal(sw.Err)
	}
	prog := &Program{c: p.Faulty}
	orig := &Execution{p: prog, res: p.Run}
	swe := &Execution{p: prog, res: sw}
	point := p.Run.Trace.At(wrong.Entry).Inst
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		AlignPoint(orig, swe, pe.Inst, point)
	}
}

// BenchmarkPotentialDeps times Definition 1 enumeration at the wrong
// output of every case.
func BenchmarkPotentialDeps(b *testing.B) {
	for _, name := range allCaseNames() {
		p := prep(b, name)
		seq, _, _ := slicing.FirstWrongOutput(p.Run.OutputValues(), p.Expected)
		seed := slicing.FailureSeeds(p.Run.Trace, seq)
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cx := slicing.NewContext(p.Faulty, p.Run.Trace)
				cx.PotentialDeps(seed)
			}
		})
	}
}

// BenchmarkInterpreterThroughput measures raw substrate speed: statement
// instances per second in plain and traced modes on the largest trace.
func BenchmarkInterpreterThroughput(b *testing.B) {
	src := `
func main() {
    var n = read();
    var acc = 0;
    for (var i = 0; i < n; i++) {
        acc = (acc * 31 + i) % 65521;
        if (acc % 7 == 0) {
            acc = acc + 3;
        }
    }
    print(acc);
}`
	c, err := interp.Compile(src)
	if err != nil {
		b.Fatal(err)
	}
	input := []int64{10000}
	for _, mode := range []struct {
		name  string
		trace bool
	}{{"plain", false}, {"traced", true}} {
		b.Run(mode.name, func(b *testing.B) {
			steps := 0
			for i := 0; i < b.N; i++ {
				r := interp.Run(c, interp.Options{Input: input, BuildTrace: mode.trace})
				if r.Err != nil {
					b.Fatal(r.Err)
				}
				steps = r.Steps
			}
			b.ReportMetric(float64(steps)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Msteps/s")
		})
	}
}

// BenchmarkScaling sweeps workload size on the grep analog: trace
// construction (Graph mode) and the two slicers as the number of input
// lines grows. This is the parameter-sweep view behind Table 2's size
// columns and Table 4's cost columns.
func BenchmarkScaling(b *testing.B) {
	p := prep(b, "grepsim/V4-F2")
	for _, lines := range []int{20, 100, 400} {
		in := bench.ScaledGrepInput(lines)
		run := interp.Run(p.Faulty, interp.Options{Input: in, BuildTrace: true})
		if run.Err != nil {
			b.Fatal(run.Err)
		}
		exp := interp.Run(p.Correct, interp.Options{Input: in})
		seq, _, ok := slicing.FirstWrongOutput(run.OutputValues(), exp.OutputValues())
		if !ok {
			b.Fatalf("scaled input (%d lines) did not expose the fault", lines)
		}
		seed := slicing.FailureSeeds(run.Trace, seq)

		b.Run(fmt.Sprintf("lines=%d/Graph", lines), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := interp.Run(p.Faulty, interp.Options{Input: in, BuildTrace: true})
				if r.Err != nil {
					b.Fatal(r.Err)
				}
			}
			b.ReportMetric(float64(run.Trace.Len()), "trace_entries")
		})
		b.Run(fmt.Sprintf("lines=%d/DS", lines), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				g := ddg.New(run.Trace)
				slicing.Dynamic(g, seed)
			}
		})
		b.Run(fmt.Sprintf("lines=%d/RS", lines), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cx := slicing.NewContext(p.Faulty, run.Trace)
				g := ddg.New(run.Trace)
				cx.Relevant(g, seed)
			}
		})
	}
}

// BenchmarkPerturbationFallback measures the §5 extension against plain
// switching verification on the Table 5(b) shape.
func BenchmarkPerturbationFallback(b *testing.B) {
	src := `
func main() {
    var A = read() * 0 + 5;
    var X = 1;
    if (A > 10) {
        if (A > 100) {
            X = 2;
        }
    }
    print(X);
}`
	c, err := interp.Compile(src)
	if err != nil {
		b.Fatal(err)
	}
	input := []int64{200}
	run := interp.Run(c, interp.Options{Input: input, BuildTrace: true})
	if run.Err != nil {
		b.Fatal(run.Err)
	}
	var aDef, pr int
	for i := 0; i < run.Trace.Len(); i++ {
		switch run.Trace.At(i).Inst.Stmt {
		case 1:
			aDef = i
		case 6:
			pr = i
		}
	}
	b.Run("perturb", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			v := &implicit.Verifier{C: c, Input: input, Orig: run.Trace}
			res := v.PerturbVerify(implicit.PerturbRequest{
				Def: aDef, Use: pr, Candidates: []int64{9, 11, 99, 101},
			})
			if !res.Dependent {
				b.Fatal("dependence not exposed")
			}
		}
	})
}

// BenchmarkStaticReach measures what the SPDG reach filter buys a full
// localization on the element-disjointness subjects of
// testdata/corpus/staticreach.json — the skip-heavy shape where symbol-
// level candidate generation pairs predicates with constant-index array
// uses they provably cannot reach. The switched_runs metric is the
// point: "on" retires those candidates before any execution, "off" pays
// a switched re-execution for each (docs/STATICDEP.md).
func BenchmarkStaticReach(b *testing.B) {
	subjects := []struct {
		name, base, root string
		crossFn          bool
	}{
		{"elem", "staticreach_elem", "buf[1] > 100", false},
		{"cross", "staticreach_cross", "v > 90", true},
	}
	for _, sub := range subjects {
		faulty, err := interp.Compile(readFile(b, "testdata/corpus/"+sub.base+".mc"))
		if err != nil {
			b.Fatal(err)
		}
		fixed, err := interp.Compile(readFile(b, "testdata/corpus/"+sub.base+"_fixed.mc"))
		if err != nil {
			b.Fatal(err)
		}
		input := []int64{5}
		corRun := interp.Run(fixed, interp.Options{Input: input, BuildTrace: true})
		if corRun.Err != nil {
			b.Fatal(corRun.Err)
		}
		var root []int
		for _, s := range faulty.Info.Stmts {
			if strings.Contains(ast.StmtString(s), sub.root) {
				root = append(root, s.ID())
			}
		}
		if len(root) == 0 {
			b.Fatalf("no statement matches root frag %q", sub.root)
		}
		// The SPDG is content-cached in real runs (corpus sharing); build
		// it once here too so the benchmark isolates the verification
		// saving rather than graph-construction cost.
		sd := staticdep.New(faulty, nil)
		spec := func(noReach, noReplay bool) *core.Spec {
			return &core.Spec{
				Program:         faulty,
				Input:           input,
				Expected:        corRun.OutputValues(),
				Oracle:          &oracle.StateOracle{Correct: corRun.Trace},
				RootCause:       root,
				CrossFunctionPD: sub.crossFn,
				NoStaticReach:   noReach,
				NoStaticSkip:    noReplay,
				StaticDeps:      sd,
			}
		}
		// reach: both pre-run filters, SPDG consulted first (the default);
		// replay: reach filter off, trace-replay filter only;
		// none: every candidate pays a switched re-execution.
		for _, mode := range []struct {
			name              string
			noReach, noReplay bool
		}{{"reach", false, false}, {"replay", true, false}, {"none", true, true}} {
			b.Run(sub.name+"/"+mode.name, func(b *testing.B) {
				var runs, skips int64
				for i := 0; i < b.N; i++ {
					rep, err := core.Locate(spec(mode.noReach, mode.noReplay))
					if err != nil {
						b.Fatal(err)
					}
					if !rep.Located {
						b.Fatal("not located")
					}
					runs = rep.Stats.SwitchedRuns
					skips = rep.Stats.StaticReachSkips
				}
				b.ReportMetric(float64(runs), "switched_runs")
				b.ReportMetric(float64(skips), "reach_skips")
			})
		}
	}
}
