package eol

// Facade coverage for the Features API: the positive tri-state spelling,
// its equivalence with the deprecated Without* wrappers, and the
// speculation option's results-neutrality at the public surface.

import (
	"reflect"
	"testing"
)

// locateFig1 runs one localization with extra options and returns the
// diagnosis.
func locateFig1(t *testing.T, opts ...LocateOption) *Diagnosis {
	t.Helper()
	s, faulty, fixed := fig1Session(t)
	root, ok := faulty.FindStatement("read() * 0")
	if !ok {
		t.Fatal("root statement not found")
	}
	all := append([]LocateOption{WithRootCause(root), WithCorrectVersion(fixed)}, opts...)
	diag, err := s.Locate(all...)
	if err != nil {
		t.Fatal(err)
	}
	if !diag.Located {
		t.Fatalf("not located:\n%s", diag.Explain())
	}
	return diag
}

// TestWithFeaturesEquivalentToDeprecatedWrappers: each deprecated
// Without* wrapper and its WithFeatures spelling configure the same
// localization — verdict and Table 3 counters identical.
func TestWithFeaturesEquivalentToDeprecatedWrappers(t *testing.T) {
	for _, tc := range []struct {
		name       string
		deprecated LocateOption
		features   Features
	}{
		{"static_skip", WithoutStaticSkip(), Features{StaticSkip: FeatureOff}},
		{"static_reach", WithoutStaticReach(), Features{StaticReach: FeatureOff}},
		{"incremental_reprune", WithoutIncrementalReprune(), Features{IncrementalReprune: FeatureOff}},
		{"checkpoints", WithoutCheckpoints(), Features{Checkpoints: FeatureOff}},
	} {
		old := locateFig1(t, tc.deprecated)
		new := locateFig1(t, WithFeatures(tc.features))
		if old.Root != new.Root ||
			old.Stats.Verifications != new.Stats.Verifications ||
			old.Stats.UserPrunings != new.Stats.UserPrunings ||
			old.Stats.Iterations != new.Stats.Iterations {
			t.Errorf("%s: wrapper and WithFeatures diverge:\n old: %+v\n new: %+v",
				tc.name, old.Stats, new.Stats)
		}
	}
}

// TestWithSpeculationResultsNeutral: the speculation feature must not
// change the diagnosis — verdict, counters, and candidate ranking all
// identical; only the Spec* cost counters may differ.
func TestWithSpeculationResultsNeutral(t *testing.T) {
	off := locateFig1(t)
	on := locateFig1(t, WithSpeculation(), WithVerifyCacheSize(0))
	if off.Root != on.Root {
		t.Errorf("root cause %v with speculation, %v without", on.Root, off.Root)
	}
	offStats, onStats := off.Stats, on.Stats
	// Blank the speculation-only counters, then everything else must
	// match field for field.
	onStats.SpecIssued, onStats.SpecHits, onStats.SpecWasted = 0, 0, 0
	offStats.SpecIssued, offStats.SpecHits, offStats.SpecWasted = 0, 0, 0
	// Cache traffic differs run-to-run only via sharing; both runs here
	// use private caches of equal size, so compare them too.
	if !reflect.DeepEqual(offStats, onStats) {
		t.Errorf("stats diverge with speculation:\n off: %+v\n on:  %+v", offStats, onStats)
	}
	if off.Stats.SpecIssued != 0 {
		t.Errorf("speculation-off run issued %d speculative runs", off.Stats.SpecIssued)
	}
}

// TestWithFeaturesOverlayOrder: later WithFeatures calls overlay earlier
// ones field by field, like corpus manifests over corpus defaults.
func TestWithFeaturesOverlayOrder(t *testing.T) {
	var st Settings
	for _, opt := range []LocateOption{
		WithFeatures(Features{StaticSkip: FeatureOff, Speculation: FeatureOn}),
		WithFeatures(Features{StaticSkip: FeatureOn}),
	} {
		opt(&st)
	}
	if st.Features.StaticSkip != FeatureOn {
		t.Errorf("StaticSkip = %v, want on (last call wins)", st.Features.StaticSkip)
	}
	if st.Features.Speculation != FeatureOn {
		t.Errorf("Speculation = %v, want on (earlier call survives default)", st.Features.Speculation)
	}
}
