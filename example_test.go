package eol_test

import (
	"fmt"

	"eol"
)

// The paper's Figure 1 scenario, used by all examples below.
const faultyGzip = `
var flags;
var outbuf[8];
var outcnt;

func main() {
    var deflated = 8;
    var saveOrigName = read() * 0;  // ROOT CAUSE: should be read()
    flags = 0;
    var method = deflated;
    if (saveOrigName) {
        flags = flags | 8;
    }
    outbuf[outcnt] = method;
    outcnt = outcnt + 1;
    outbuf[outcnt] = flags;
    outcnt = outcnt + 1;
    if (saveOrigName) {
        outbuf[outcnt] = 99;
        outcnt = outcnt + 1;
    }
    print(outbuf[0]);
    print(outbuf[1]);
}
`

func ExampleCompile() {
	p, err := eol.Compile(`func main() { print(6 * 7); }`)
	if err != nil {
		panic(err)
	}
	run, _ := p.Run(nil)
	fmt.Println(run.Outputs())
	// Output: [42]
}

func ExampleSession_DynamicSlice() {
	p := eol.MustCompile(faultyGzip)
	s, _ := eol.NewSession(p, []int64{1}, []int64{8, 8})

	root, _ := p.FindStatement("read() * 0")
	ds := s.DynamicSlice()
	rs := s.RelevantSlice()
	fmt.Printf("DS contains root cause: %v\n", ds.ContainsStmt(root))
	fmt.Printf("RS contains root cause: %v\n", rs.ContainsStmt(root))
	// Output:
	// DS contains root cause: false
	// RS contains root cause: true
}

func ExampleSession_VerifyImplicitDependence() {
	p := eol.MustCompile(faultyGzip)
	s, _ := eol.NewSession(p, []int64{1}, []int64{8, 8})

	ifID, _ := p.FindStatement("if (saveOrigName)")
	useID, _ := p.FindStatement("outbuf[outcnt] = flags")
	v, _ := s.VerifyImplicitDependence(
		eol.Instance{Stmt: ifID, Occ: 1},
		eol.Instance{Stmt: useID, Occ: 1},
		"flags")
	fmt.Println(v)
	// Output: STRONG_ID
}

func ExampleSession_Locate() {
	faulty := eol.MustCompile(faultyGzip)
	correct := eol.MustCompile(faultyGzip[:0] +
		// the fixed version: the same program with the fault repaired
		replaceOnce(faultyGzip, "read() * 0", "read()"))

	s, _ := eol.NewSession(faulty, []int64{1}, []int64{8, 8})
	root, _ := faulty.FindStatement("read() * 0")
	diag, _ := s.Locate(
		eol.WithRootCause(root),
		eol.WithCorrectVersion(correct),
	)
	fmt.Printf("located: %v at %v\n", diag.Located, diag.Root)
	fmt.Printf("iterations: %d, strong edges: %d\n", diag.Stats.Iterations, diag.Stats.StrongEdges)
	// Output:
	// located: true at S5#1
	// iterations: 1, strong edges: 1
}

func replaceOnce(s, old, new string) string {
	for i := 0; i+len(old) <= len(s); i++ {
		if s[i:i+len(old)] == old {
			return s[:i] + new + s[i+len(old):]
		}
	}
	return s
}
