// The extensions example demonstrates the two implemented extensions
// beyond the paper's evaluated system:
//
//  1. §5 value perturbation — closing the Table 5(b) soundness gap where
//     nested predicates guard the same faulty value and single-predicate
//     switching cannot expose the implicit dependence; and
//  2. cross-function potential dependences — locating omissions whose
//     suppressing predicate lives inside a callee.
//
// Run with:
//
//	go run ./examples/extensions
package main

import (
	"fmt"

	"eol"
)

// Table 5(b) of the paper: A is faulty (5 instead of the input); both
// nested predicates take false; X keeps its stale value.
const table5bSrc = `
func main() {
    var A = read() * 0 + 5;   // ROOT CAUSE: should be read()
    var X = 1;
    if (A > 10) {
        if (A > 100) {
            X = 2;
        }
    }
    print(X);
}
`

// A callee-side omission: the predicate suppressing the global write is
// inside setup(); the corrupted value surfaces in main.
const crossFnSrc = `
var mode;

func setup(request) {
    if (request > 0) {
        mode = 7;
    }
    return 0;
}

func main() {
    var request = read() * 0;   // ROOT CAUSE: should be read()
    mode = 1;
    setup(request);
    print(mode);
}
`

func main() {
	fmt.Println("=== Extension 1: §5 value perturbation (Table 5(b)) ===")
	demo(table5bSrc, []int64{200}, []int64{2}, "read() * 0 + 5",
		eol.WithPerturbFallback())

	fmt.Println("\n=== Extension 2: cross-function potential dependences ===")
	demo(crossFnSrc, []int64{5}, []int64{7}, "read() * 0",
		eol.WithCrossFunctionPD())
}

func demo(src string, input, expected []int64, rootFrag string, extension eol.LocateOption) {
	p := eol.MustCompile(src)
	root, _ := p.FindStatement(rootFrag)

	// Without the extension: the locator gives up.
	s1, err := eol.NewSession(p, input, expected)
	check(err)
	diag, err := s1.Locate(eol.WithRootCause(root))
	check(err)
	fmt.Printf("standard locator:  located=%v (%d verifications)\n",
		diag.Located, diag.Stats.Verifications)

	// With the extension: located.
	s2, err := eol.NewSession(p, input, expected)
	check(err)
	diag, err = s2.Locate(eol.WithRootCause(root), extension)
	check(err)
	fmt.Printf("with extension:    located=%v at %v (%d verifications)\n",
		diag.Located, diag.Root, diag.Stats.Verifications)
	if diag.Located {
		fmt.Printf("root cause:        %s\n", p.StatementText(diag.Root.Stmt))
	}
}

func check(err error) {
	if err != nil {
		panic(err)
	}
}
