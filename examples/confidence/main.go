// The confidence example reproduces the paper's Figure 4: confidence
// analysis infers, from one correct and one wrong output, which statement
// instances can be exonerated (C = 1), which have no evidence (C = 0),
// and which get a range-based fractional confidence from value profiles.
//
// Run with:
//
//	go run ./examples/confidence
package main

import (
	"fmt"

	"eol"
)

// Figure 4 of the paper:
//
//  10. a = ...        C = f(range(a))
//  20. b = a % 2;     C = 1   (feeds the correct output)
//  30. c = a + 2;     C = 0   (influences only the wrong output)
//  40. print(b)       observed correct
//  41. print(c)       observed wrong
const fig4Src = `
func main() {
    var a = read();
    var b = a % 2;
    var c = a + 2;
    print(b);
    print(c);
}
`

func main() {
	p := eol.MustCompile(fig4Src)

	// The failing run: a = 1 prints [1 3]; the user expected [1 5].
	input := []int64{1}
	expected := []int64{1, 5}

	s, err := eol.NewSession(p, input, expected)
	check(err)

	// Value profiles from the test suite: a was observed in {1,3,5,7}
	// across passing runs, so range(a) = 4.
	for _, v := range []int64{1, 3, 5, 7} {
		check(s.AddProfileRun([]int64{v}))
	}

	fmt.Println("=== program ===")
	fmt.Println(p.Listing())

	for _, frag := range []string{"var a = read()", "var b = a % 2", "var c = a + 2"} {
		id, _ := p.FindStatement(frag)
		conf, ok := s.Confidence(eol.Instance{Stmt: id, Occ: 1})
		if !ok {
			panic("instance not executed: " + frag)
		}
		fmt.Printf("C(%-16s) = %.3f\n", frag, conf)
	}

	fmt.Println("\npruned slice (PS), most suspicious first:")
	for i, cand := range s.PrunedSlice() {
		fmt.Printf("  %2d. %-8v C=%.3f  %s\n", i+1, cand.Instance, cand.Confidence, cand.Statement)
	}

	fmt.Println("\nInterpretation (paper's Fig. 4):")
	fmt.Println("  b = a % 2 directly feeds the correct output -> C = 1, pruned away.")
	fmt.Println("  c = a + 2 influences only the wrong output  -> C = 0, prime suspect.")
	fmt.Println("  a's confidence is fractional: knowing b = a % 2 was correct only")
	fmt.Println("  halves a's observed range {1,3,5,7}: C = 1 - log(2)/log(4) = 0.5.")
}

func check(err error) {
	if err != nil {
		panic(err)
	}
}
