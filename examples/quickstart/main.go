// The quickstart example walks the paper's Figure 1 end to end through
// the public API: the gzip save-original-name bug, where the omitted
// "flags |= ORIG_NAME" assignment makes classic dynamic slicing miss the
// root cause, and implicit-dependence detection finds it.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"eol"
)

// The faulty gzip-like program of the paper's Figure 1: saveOrigName is
// zeroed (the root cause), so the ORIG_NAME branch is never taken and the
// flags byte printed later is wrong.
const faultySrc = `
var flags;
var outbuf[8];
var outcnt;

func main() {
    var deflated = 8;
    var saveOrigName = read() * 0;  // ROOT CAUSE: should be read()
    flags = 0;
    var method = deflated;
    if (saveOrigName) {             // paper's S4
        flags = flags | 8;          // paper's S5: flags |= ORIG_NAME
    }
    outbuf[outcnt] = method;
    outcnt = outcnt + 1;
    outbuf[outcnt] = flags;         // paper's S6
    outcnt = outcnt + 1;
    if (saveOrigName) {             // paper's S7
        outbuf[outcnt] = 99;        // paper's S8
        outcnt = outcnt + 1;
    }
    print(outbuf[0]);               // paper's S9: correct output
    print(outbuf[1]);               // paper's S10: wrong output
}
`

func main() {
	program := eol.MustCompile(faultySrc)
	input := []int64{1} // gzip -N mode: save the original name

	fmt.Println("=== program ===")
	fmt.Println(program.Listing())

	// 1. Observe the failure: the flags byte should be 8 but prints 0.
	run, err := program.Run(input)
	check(err)
	fmt.Printf("faulty output:   %v\n", run.Outputs())
	expected := []int64{8, 8}
	fmt.Printf("expected output: %v\n\n", expected)

	session, err := eol.NewSession(program, input, expected)
	check(err)
	seq, got, want, at := session.WrongOutput()
	fmt.Printf("first wrong output: #%d, got %d want %d, printed at %v\n\n", seq, got, want, at)

	// 2. Classic dynamic slicing misses the root cause.
	root, _ := program.FindStatement("read() * 0")
	ds := session.DynamicSlice()
	fmt.Printf("dynamic slice: %d statements / %d instances; contains root cause: %v\n",
		ds.Static, ds.Dynamic, ds.ContainsStmt(root))

	// 3. Relevant slicing captures it, at the cost of false dependences.
	rs := session.RelevantSlice()
	fmt.Printf("relevant slice: %d statements / %d instances; contains root cause: %v\n\n",
		rs.Static, rs.Dynamic, rs.ContainsStmt(root))

	// 4. Verify the candidate dependences by predicate switching.
	ifFlags, _ := program.FindStatement("if (saveOrigName)")
	useFlags, _ := program.FindStatement("outbuf[outcnt] = flags")
	v, err := session.VerifyImplicitDependence(
		eol.Instance{Stmt: ifFlags, Occ: 1},
		eol.Instance{Stmt: useFlags, Occ: 1},
		"flags")
	check(err)
	fmt.Printf("VerifyDep(S4 -> S6, flags) = %v   (the paper's strong implicit dependence)\n", v)

	// 5. Run the full demand-driven locator with a scripted user: only
	// the failure-inducing chain has corrupted state.
	chain := map[int]bool{root: true, ifFlags: true, useFlags: true}
	if printID, ok := program.FindStatement("print(outbuf[1])"); ok {
		chain[printID] = true
	}
	diag, err := session.Locate(
		eol.WithRootCause(root),
		eol.WithOracle(func(inst eol.Instance, text string) bool {
			return !chain[inst.Stmt]
		}),
	)
	check(err)
	fmt.Println()
	fmt.Print(diag.Explain())
}

func check(err error) {
	if err != nil {
		panic(err)
	}
}
