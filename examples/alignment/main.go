// The alignment example demonstrates the region-based execution
// alignment algorithm (Algorithm 1, Figures 2 and 3 of the paper):
// matching a point of the original run in a predicate-switched re-run,
// across inserted loop iterations, and detecting when no match exists.
//
// Run with:
//
//	go run ./examples/alignment
package main

import (
	"fmt"

	"eol"
)

// fig2Src mirrors the paper's Figure 2: if(P) guards definitions that a
// later doubly-nested use reads; a while loop sits in between.
const fig2Src = `
func main() {
    var i = 0;
    var t = 0;
    var x = 0;
    var P = read();
    var C1 = read();
    var C2 = read();
    if (P) {
        t = 1;
        x = 5;
    }
    while (i < t) {
        var w = 1;
        if (C1) {
            w = 2;
        }
        i = i + 1;
    }
    if (1) {
        if (C2 == 0) {
            print(x);
        }
        var z = 9;
    }
}
`

// fig2BSrc is the paper's execution (3): the switched branch also flips
// C2, so print(x) has no counterpart in the switched run.
const fig2BSrc = `
func main() {
    var i = 0;
    var t = 0;
    var x = 0;
    var P = read();
    var C1 = read();
    var C2 = read();
    if (P) {
        t = 1;
        C2 = 1;
        x = 5;
    }
    while (i < t) {
        var w = 1;
        if (C1) {
            w = 2;
        }
        i = i + 1;
    }
    if (1) {
        if (C2 == 0) {
            print(x);
        }
        var z = 9;
    }
}
`

// fig3Src mirrors Figure 3: switching makes the loop break out early
// (single-entry-multiple-exit), so the use inside the iteration has no
// match.
const fig3Src = `
func main() {
    var P = read();
    var C0 = 0;
    var x = 1;
    if (P) {
        C0 = 1;
    }
    var i = 0;
    var t = 2;
    while (i < t) {
        if (C0) {
            break;
        }
        if (1) {
            print(x);
        }
        i = i + 1;
    }
    print(99);
}
`

func main() {
	input := []int64{0, 0, 0}

	fmt.Println("=== Figure 2, execution (2): match found across an inserted loop ===")
	demo(fig2Src, input, "if (P)", "print(x)")

	fmt.Println("\n=== Figure 2, execution (3): no match (governing branch flipped) ===")
	demo(fig2BSrc, input, "if (P)", "print(x)")

	fmt.Println("\n=== Figure 3: single-entry-multiple-exit (break), no match ===")
	demo(fig3Src, []int64{0}, "if (P)", "print(x)")

	fmt.Println("\n=== Figure 3: the statement AFTER the loop still matches ===")
	demo(fig3Src, []int64{0}, "if (P)", "print(99)")
}

// demo switches the first instance of predFrag, then aligns the first
// instance of pointFrag between the two executions.
func demo(src string, input []int64, predFrag, pointFrag string) {
	p := eol.MustCompile(src)
	predID, ok := p.FindStatement(predFrag)
	if !ok {
		panic("predicate not found: " + predFrag)
	}
	pointID, ok := p.FindStatement(pointFrag)
	if !ok {
		panic("point not found: " + pointFrag)
	}
	pred := eol.Instance{Stmt: predID, Occ: 1}
	point := eol.Instance{Stmt: pointID, Occ: 1}

	orig, err := p.Run(input)
	check(err)
	switched, err := p.RunSwitched(input, pred)
	check(err)

	fmt.Printf("original run:  %d steps, outputs %v\n", orig.Steps(), orig.Outputs())
	fmt.Printf("switched %v:   %d steps, outputs %v\n", pred, switched.Steps(), switched.Outputs())
	if match, found := eol.AlignPoint(orig, switched, pred, point); found {
		fmt.Printf("Match(%v '%s') = %v\n", point, pointFrag, match)
	} else {
		fmt.Printf("Match(%v '%s') = NOT FOUND\n", point, pointFrag)
	}
}

func check(err error) {
	if err != nil {
		panic(err)
	}
}
