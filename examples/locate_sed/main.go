// The locate_sed example runs the demand-driven locator on the hardest
// structured case of the benchmark suite: the sed-analog bug with two
// chained execution omissions (the reproduction's analog of the paper's
// sed V3-F2, the only case needing two expansion iterations).
//
// The zeroed g flag suppresses the markEnd assignment; markEnd's stale
// value then suppresses the status assignment; the printed status is
// wrong. Neither omission is visible to classic dynamic slicing — the
// locator has to discover two implicit dependence edges, one per
// expansion iteration, before the root cause enters the candidate set.
//
// Run with:
//
//	go run ./examples/locate_sed
package main

import (
	"fmt"

	"eol"
	"eol/internal/bench"
)

func main() {
	// The program, inputs and seeded fault come from the benchmark
	// suite; the analysis below goes through the public API.
	c := bench.ByName("sedsim/V3-F2")
	faultySrc, err := c.FaultySrc()
	check(err)

	faulty := eol.MustCompile(faultySrc)
	correct := eol.MustCompile(c.CorrectSrc)

	expectedRun, err := correct.Run(c.FailingInput)
	check(err)
	expected := expectedRun.Outputs()

	fmt.Println("=== sedsim with the V3-F2 fault (g flag zeroed) ===")
	fmt.Printf("fault: %q became %q\n\n", c.FaultFrom, c.FaultTo)
	run, err := faulty.Run(c.FailingInput)
	check(err)
	fmt.Printf("faulty output:   %v\n", run.Outputs())
	fmt.Printf("expected output: %v\n\n", expected)

	s, err := eol.NewSession(faulty, c.FailingInput, expected)
	check(err)
	for _, in := range c.PassingInputs {
		check(s.AddProfileRun(in))
	}

	seq, got, want, at := s.WrongOutput()
	fmt.Printf("first wrong output: #%d, got %d want %d, printed at %v\n", seq, got, want, at)

	root, _ := faulty.FindStatement("read() * 0")
	ds := s.DynamicSlice()
	fmt.Printf("dynamic slice: %d/%d, contains root cause: %v (the omissions hide it)\n\n",
		ds.Static, ds.Dynamic, ds.ContainsStmt(root))

	diag, err := s.Locate(
		eol.WithRootCause(root),
		eol.WithCorrectVersion(correct),
	)
	check(err)
	fmt.Print(diag.Explain())

	fmt.Printf("\nThe %d expansion iterations correspond to the two chained omissions:\n",
		diag.Stats.Iterations)
	fmt.Println("  iteration 1: print(status) --sid--> if (markEnd > 0)")
	fmt.Println("  iteration 2: if (markEnd > 0) --sid--> if (gflag > 0) --dd--> the zeroed g flag")
}

func check(err error) {
	if err != nil {
		panic(err)
	}
}
