// Package eol (Execution Omission Locator) is the public API of this
// reproduction of "Towards Locating Execution Omission Errors" (Zhang,
// Tallam, Gupta, Gupta — PLDI 2007).
//
// The package compiles MiniC programs (the deterministic C-like language
// that serves as the execution substrate; see DESIGN.md), executes them
// with full dependence tracing, and exposes the paper's analyses:
//
//   - classic dynamic slicing and relevant slicing (the baselines),
//   - implicit-dependence verification by predicate switching
//     (Definitions 2 and 4, with region-based execution alignment), and
//   - the demand-driven fault locator (Algorithm 2) with confidence-based
//     pruning.
//
// Typical use:
//
//	p := eol.MustCompile(src)
//	s, err := eol.NewSession(p, failingInput, expectedOutput)
//	diag, err := s.Locate()
//	if diag.Located { fmt.Println(diag.Explain()) }
//
// # Context-first API
//
// Every execution entry point has a context-taking form — RunContext,
// RunPlainContext, RunSwitchedContext, LocateContext, LocateCorpus —
// that bounds the whole operation, including switched re-executions on
// the verification workers and the interpreter's step loop, by the
// given context. The context-free forms (Run, Locate, ...) are thin
// wrappers over context.Background and remain the right call when no
// cancellation is needed; code migrating to deadlines only changes the
// call site, nothing else. A canceled or expired Locate returns a
// non-nil partial Diagnosis — its Stats reflect the work done up to the
// abort — together with an error matching ErrCanceled or ErrDeadline
// via errors.Is. See the error taxonomy next to ErrBudget.
package eol

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"io"

	"eol/internal/align"
	"eol/internal/backend"
	"eol/internal/confidence"
	"eol/internal/core"
	"eol/internal/corpus"
	"eol/internal/ddg"
	"eol/internal/implicit"
	"eol/internal/interp"
	"eol/internal/lang/ast"
	"eol/internal/obs"
	"eol/internal/oracle"
	"eol/internal/serve"
	"eol/internal/slicing"
	"eol/internal/trace"
)

// Instance identifies a statement instance: the Occ-th execution of the
// statement with ID Stmt (the paper's "S15(2)" notation).
type Instance = trace.Instance

// Program is a compiled MiniC program.
type Program struct {
	c *interp.Compiled
}

// Compile parses, checks and prepares a MiniC program.
func Compile(src string) (*Program, error) {
	c, err := interp.Compile(src)
	if err != nil {
		return nil, err
	}
	return &Program{c: c}, nil
}

// MustCompile is Compile that panics on error; for tests and examples.
func MustCompile(src string) *Program {
	p, err := Compile(src)
	if err != nil {
		panic(err)
	}
	return p
}

// Source returns the program text.
func (p *Program) Source() string { return p.c.Src }

// NumStatements returns the number of numbered statements.
func (p *Program) NumStatements() int { return p.c.Info.NumStmts() }

// StatementText renders statement id as one line of source ("" if
// unknown).
func (p *Program) StatementText(id int) string {
	s := p.c.Info.Stmt(id)
	if s == nil {
		return ""
	}
	return ast.StmtString(s)
}

// FindStatement returns the ID of the first statement whose rendering
// contains frag.
func (p *Program) FindStatement(frag string) (int, bool) {
	for _, s := range p.c.Info.Stmts {
		if strings.Contains(ast.StmtString(s), frag) {
			return s.ID(), true
		}
	}
	return 0, false
}

// Listing renders the program with S<n> statement labels.
func (p *Program) Listing() string {
	var sb strings.Builder
	for _, s := range p.c.Info.Stmts {
		fmt.Fprintf(&sb, "S%-4d %s\n", s.ID(), ast.StmtString(s))
	}
	return sb.String()
}

// Execution is one completed run of a program.
type Execution struct {
	p   *Program
	res *interp.Result
}

// Run executes the program with full dependence tracing.
func (p *Program) Run(input []int64) (*Execution, error) {
	return p.RunContext(context.Background(), input)
}

// RunContext is Run bounded by ctx (nil = background): the run aborts
// with an error matching ErrCanceled or ErrDeadline when the context
// dies mid-execution.
func (p *Program) RunContext(ctx context.Context, input []int64) (*Execution, error) {
	res := backend.Default().Run(p.c, interp.Options{Input: input, BuildTrace: true, Ctx: ctx})
	if res.Err != nil {
		return nil, res.Err
	}
	return &Execution{p: p, res: res}, nil
}

// RunPlain executes without tracing (the paper's "Plain" mode).
func (p *Program) RunPlain(input []int64) (*Execution, error) {
	return p.RunPlainContext(context.Background(), input)
}

// RunPlainContext is RunPlain bounded by ctx (nil = background).
func (p *Program) RunPlainContext(ctx context.Context, input []int64) (*Execution, error) {
	res := backend.Default().Run(p.c, interp.Options{Input: input, Ctx: ctx})
	if res.Err != nil {
		return nil, res.Err
	}
	return &Execution{p: p, res: res}, nil
}

// RunSwitched re-executes with the given predicate instance's branch
// outcome inverted (the paper's predicate switching).
func (p *Program) RunSwitched(input []int64, pred Instance) (*Execution, error) {
	return p.RunSwitchedContext(context.Background(), input, pred)
}

// RunSwitchedContext is RunSwitched bounded by ctx (nil = background).
func (p *Program) RunSwitchedContext(ctx context.Context, input []int64, pred Instance) (*Execution, error) {
	res := backend.Default().Run(p.c, interp.Options{
		Input: input, BuildTrace: true, Ctx: ctx,
		Switch: &interp.SwitchPlan{Stmt: pred.Stmt, Occ: pred.Occ},
	})
	if res.Err != nil {
		return nil, res.Err
	}
	return &Execution{p: p, res: res}, nil
}

// Outputs returns the printed int values in order.
func (e *Execution) Outputs() []int64 { return e.res.OutputValues() }

// Rendered returns the formatted program output.
func (e *Execution) Rendered() string { return e.res.Rendered }

// Steps returns the number of executed statement instances.
func (e *Execution) Steps() int { return e.res.Steps }

// Instances returns every executed instance in order (traced runs only).
func (e *Execution) Instances() []Instance {
	if e.res.Trace == nil {
		return nil
	}
	insts := make([]Instance, e.res.Trace.Len())
	for i := 0; i < e.res.Trace.Len(); i++ {
		insts[i] = e.res.Trace.At(i).Inst
	}
	return insts
}

// ---------------------------------------------------------------------------
// Failure-analysis session

// ErrNoFailure is returned by NewSession when the output matches.
var ErrNoFailure = errors.New("eol: output matches the expected output")

// The error taxonomy: every terminal error of a run or localization
// matches exactly one of these sentinels via errors.Is, however deep
// the wrapping. ErrDeadline and ErrCanceled additionally match
// context.DeadlineExceeded and context.Canceled respectively, so code
// already switching on the context sentinels keeps working.
var (
	// ErrBudget reports an execution that exhausted its step budget.
	ErrBudget = interp.ErrBudget
	// ErrDeadline reports an operation aborted because its context's
	// deadline passed.
	ErrDeadline = interp.ErrDeadline
	// ErrCanceled reports an operation aborted because its context was
	// canceled.
	ErrCanceled = interp.ErrCanceled
	// ErrNotLocated reports a localization that completed without the
	// known root cause entering the candidate set; corpus runs classify
	// such subjects as failures.
	ErrNotLocated = core.ErrNotLocated
)

// Session analyzes one failing execution of a program.
type Session struct {
	p        *Program
	input    []int64
	expected []int64
	run      *interp.Result
	seq      int
	cx       *slicing.Context
	profile  *confidence.Profile

	settings Settings
}

// Settings collects every Locate knob in one place. LocateOption
// helpers mutate a Settings value, and the applied settings persist on
// the Session across Locate calls. The zero value is the default
// configuration.
type Settings struct {
	// RootCause lists the statement IDs that constitute the fault; the
	// search stops when any of them enters the candidate set.
	RootCause []int
	// Oracle judges benign program state (see WithOracle). Mutually
	// exclusive with Correct; the option applied last wins.
	Oracle func(inst Instance, stmtText string) bool
	// Correct is the correct program version used as a ground-truth
	// state oracle (see WithCorrectVersion).
	Correct *Program
	// MaxIterations bounds the expansion loop (0 = default 10).
	MaxIterations int
	// PathMode selects the safe explicit-path variant of VerifyDep.
	PathMode bool
	// PerturbFallback enables value-perturbation verification when
	// predicate switching exposes no dependence.
	PerturbFallback bool
	// CrossFunctionPD extends potential dependences across function
	// boundaries for globals.
	CrossFunctionPD bool
	// VerifyWorkers sizes the verification worker pool (0 = GOMAXPROCS,
	// 1 = sequential).
	VerifyWorkers int
	// VerifyCacheSize bounds the switched-run cache (0 = default,
	// negative = disabled).
	VerifyCacheSize int
	// NoStaticSkip disables the static skip-filter.
	NoStaticSkip bool
	// NoStaticReach disables the pre-execution static reach filter over
	// the interprocedural dependence graph (see docs/STATICDEP.md).
	NoStaticReach bool
	// Checkpoints bounds the execution snapshots captured during the
	// failing run for checkpointed switched replay (0 = default bound,
	// negative = disabled; see WithCheckpoints / WithoutCheckpoints and
	// docs/CHECKPOINT.md). The diagnosis, journal and candidate ranking
	// are byte-identical on or off; only the Stats checkpoint counters
	// and wall-clock time differ.
	Checkpoints int
	// NoIncremental disables incremental re-pruning of the expanded
	// graph (Algorithm 2's re-prune step recomputes confidence from
	// scratch each iteration instead of re-propagating the dirty cone).
	// The diagnosis, journal and candidate ranking are byte-identical
	// either way; only Stats.Repropagated/DirtyFraction and wall-clock
	// time differ.
	NoIncremental bool
	// Features selects the optional engine features as explicit
	// tri-states — the preferred, positive spelling of the knobs above.
	// Each field left at FeatureDefault defers to the corresponding
	// legacy knob:
	//
	//	Features.StaticSkip         ↔ NoStaticSkip
	//	Features.StaticReach        ↔ NoStaticReach
	//	Features.IncrementalReprune ↔ NoIncremental
	//	Features.Checkpoints        ↔ Checkpoints < 0 (the sign; the
	//	                              magnitude keeps selecting the count)
	//	Features.Speculation        — new; no legacy knob, off by default
	//
	// A FeatureOn/FeatureOff field overrides its legacy knob. See
	// WithFeatures, WithSpeculation and docs/SPECULATION.md.
	Features Features
	// Backend names the execution backend for the failing run and every
	// re-execution: "vm" (the bytecode VM, the default), "tree" (the
	// tree-walking reference interpreter), or "" for the default.
	// Backends are byte-identical — same diagnosis, counters and journal
	// — so this only changes wall-clock time; see WithBackend and
	// docs/VM.md.
	Backend string
	// Observer receives the run's deterministic event stream (see
	// WithObserver and docs/OBSERVABILITY.md).
	Observer Observer
	// Timeline additionally captures the event stream in
	// Diagnosis.Timeline.
	Timeline bool
}

// NewSession runs the program on input, compares against the expected
// output values, and prepares the analyses. It returns ErrNoFailure when
// the outputs match, and an error for truncated-output failures (the
// technique slices from a wrong value).
func NewSession(p *Program, input, expected []int64) (*Session, error) {
	run := backend.Default().Run(p.c, interp.Options{Input: input, BuildTrace: true})
	if run.Err != nil {
		return nil, fmt.Errorf("eol: failing run aborted: %w", run.Err)
	}
	seq, missing, ok := slicing.FirstWrongOutput(run.OutputValues(), expected)
	if !ok {
		return nil, ErrNoFailure
	}
	if missing {
		return nil, core.ErrMissingOutput
	}
	return &Session{
		p: p, input: input, expected: expected,
		run: run, seq: seq,
		cx:      slicing.NewContext(p.c, run.Trace),
		profile: confidence.NewProfile(),
	}, nil
}

// WrongOutput describes the failure observation: the sequence number of
// the first wrong output, the value printed, the expected value, and the
// producing instance. For an extra-output failure (the program printed
// more values than expected) the want value is reported as 0.
func (s *Session) WrongOutput() (seq int, got, want int64, at Instance) {
	o := s.run.Trace.OutputAt(s.seq)
	if s.seq < len(s.expected) {
		want = s.expected[s.seq]
	}
	return s.seq, o.Value, want, s.run.Trace.At(o.Entry).Inst
}

// AddProfileRun executes the program on a passing input and records the
// value profile used by confidence analysis.
func (s *Session) AddProfileRun(input []int64) error {
	r := backend.Default().Run(s.p.c, interp.Options{Input: input, BuildTrace: true})
	if r.Err != nil {
		return r.Err
	}
	s.profile.AddTrace(r.Trace)
	return nil
}

// Slice is a slice result in the paper's static/dynamic terms.
type Slice struct {
	// Static is the number of unique statements; Dynamic the number of
	// statement instances.
	Static, Dynamic int
	// Statements lists the unique statement IDs.
	Statements []int
	// Instances lists the statement instances, in execution order.
	Instances []Instance
}

// ContainsStmt reports whether the slice includes statement id.
func (sl Slice) ContainsStmt(id int) bool {
	for _, s := range sl.Statements {
		if s == id {
			return true
		}
	}
	return false
}

func (s *Session) newSlice(g *ddg.Graph, set *ddg.Set) Slice {
	sl := Slice{}
	stmts := map[int]bool{}
	for _, i := range ddg.SortedEntries(set) {
		e := s.run.Trace.At(i)
		sl.Instances = append(sl.Instances, e.Inst)
		stmts[e.Inst.Stmt] = true
	}
	for id := range stmts {
		sl.Statements = append(sl.Statements, id)
	}
	sl.Static = len(stmts)
	sl.Dynamic = len(sl.Instances)
	return sl
}

// DynamicSlice computes the classic dynamic slice of the wrong output.
func (s *Session) DynamicSlice() Slice {
	g := ddg.New(s.run.Trace)
	set := slicing.Dynamic(g, slicing.FailureSeeds(s.run.Trace, s.seq))
	return s.newSlice(g, set)
}

// RelevantSlice computes the relevant slice (dynamic + potential
// dependences, Definition 1) of the wrong output.
func (s *Session) RelevantSlice() Slice {
	g := ddg.New(s.run.Trace)
	set := s.cx.Relevant(g, slicing.FailureSeeds(s.run.Trace, s.seq))
	return s.newSlice(g, set)
}

// PotentialDependences returns the predicate instances that the given
// use instance potentially depends on (Definition 1).
func (s *Session) PotentialDependences(use Instance) []Instance {
	idx := s.run.Trace.FindInstance(use)
	if idx < 0 {
		return nil
	}
	var res []Instance
	seen := map[Instance]bool{}
	for _, pd := range s.cx.PotentialDeps(idx) {
		inst := s.run.Trace.At(pd.Pred).Inst
		if !seen[inst] {
			seen[inst] = true
			res = append(res, inst)
		}
	}
	return res
}

// Verdict classifies a verified dependence.
type Verdict int

// Verdicts, strongest last.
const (
	NotImplicit Verdict = iota
	Implicit
	StrongImplicit
)

// String names the verdict in the paper's notation.
func (v Verdict) String() string {
	switch v {
	case Implicit:
		return "ID"
	case StrongImplicit:
		return "STRONG_ID"
	}
	return "NOT_ID"
}

// VerifyImplicitDependence re-executes with pred's branch switched and
// classifies the dependence of use (through the named variable) on pred,
// per Definitions 2 and 4.
func (s *Session) VerifyImplicitDependence(pred, use Instance, variable string) (Verdict, error) {
	sym := -1
	for _, symbol := range s.p.c.Info.Symbols {
		if symbol.Name == variable {
			sym = symbol.ID
			break
		}
	}
	if sym < 0 {
		return NotImplicit, fmt.Errorf("eol: unknown variable %q", variable)
	}
	pIdx := s.run.Trace.FindInstance(pred)
	uIdx := s.run.Trace.FindInstance(use)
	if pIdx < 0 || uIdx < 0 {
		return NotImplicit, fmt.Errorf("eol: instance not in the failing trace")
	}
	// Find the element actually read for that symbol.
	elem := trace.ScalarElem
	for _, u := range s.run.Trace.At(uIdx).Uses {
		if u.Sym == sym {
			elem = u.Elem
			break
		}
	}
	v := &implicit.Verifier{
		C: s.p.c, Input: s.input, Orig: s.run.Trace,
		WrongOut: *s.run.Trace.OutputAt(s.seq),
		PathMode: s.settings.PathMode,
	}
	if s.seq < len(s.expected) {
		v.Vexp, v.HasVexp = s.expected[s.seq], true
	}
	verdict := v.Verify(implicit.Request{Pred: pIdx, Use: uIdx, UseSym: sym, UseElem: elem})
	return Verdict(verdict), nil
}

// ---------------------------------------------------------------------------
// Localization

// Features selects the locator's optional engine features as explicit
// tri-states (FeatureDefault / FeatureOn / FeatureOff); see
// Settings.Features for the mapping onto the legacy negative knobs.
// Every feature is results-neutral: the diagnosis, counters and journal
// are byte-identical whatever the switches — only cost counters and
// wall-clock time change.
type Features = core.Features

// FeatureMode is the tri-state of one Features field.
type FeatureMode = core.FeatureMode

// Feature modes: FeatureDefault defers to the legacy knob (or built-in
// default), FeatureOn/FeatureOff force the feature.
const (
	FeatureDefault = core.FeatureDefault
	FeatureOn      = core.FeatureOn
	FeatureOff     = core.FeatureOff
)

// LocateOption configures Locate by mutating the Session's Settings.
type LocateOption func(*Settings)

// WithSettings replaces the session's settings wholesale — the bulk
// alternative to chaining individual options.
func WithSettings(st Settings) LocateOption {
	return func(s *Settings) { *s = st }
}

// WithRootCause tells the locator which statement IDs constitute the
// fault, so the search can stop as soon as one enters the candidate set.
func WithRootCause(stmts ...int) LocateOption {
	return func(s *Settings) { s.RootCause = stmts }
}

// WithOracle supplies the benign-state judge (the interactive programmer
// of Algorithm 2): it receives an instance and the statement's source
// text and reports whether the program state there is correct.
func WithOracle(f func(inst Instance, stmtText string) bool) LocateOption {
	return func(s *Settings) { s.Oracle, s.Correct = f, nil }
}

// WithPathMode selects the safe explicit-path variant of VerifyDep.
func WithPathMode() LocateOption {
	return func(s *Settings) { s.PathMode = true }
}

// WithMaxIterations bounds the expansion loop.
func WithMaxIterations(n int) LocateOption {
	return func(s *Settings) { s.MaxIterations = n }
}

// WithVerifyWorkers sizes the verification worker pool (0 = GOMAXPROCS,
// 1 = sequential). Any value yields the same diagnosis — verification
// scheduling is deterministic — only wall-clock time changes.
func WithVerifyWorkers(n int) LocateOption {
	return func(s *Settings) { s.VerifyWorkers = n }
}

// WithVerifyCacheSize bounds the switched-run cache (0 = default size,
// negative = disabled). Repeated verifications against the same predicate
// instance reuse one re-execution.
func WithVerifyCacheSize(n int) LocateOption {
	return func(s *Settings) { s.VerifyCacheSize = n }
}

// WithCheckpoints bounds the checkpoint store captured during the
// failing run (0 = the default bound, interp.DefaultCheckpoints).
// Switched re-executions — the cost driver of implicit-dependence
// verification — then fork from the nearest checkpoint and replay only
// the suffix instead of the whole program. More checkpoints mean
// shorter suffixes at the price of retained snapshot memory (see
// Diagnosis.Stats.CheckpointBytes and docs/CHECKPOINT.md).
func WithCheckpoints(n int) LocateOption {
	if n < 0 {
		n = 0
	}
	return func(s *Settings) { s.Checkpoints = n }
}

// WithoutCheckpoints disables checkpointed switched replay: every
// switched re-execution replays the program from the start. The
// diagnosis is identical either way; the flag exists for A/B cost
// comparison (see Stats.CheckpointHits and Stats.SuffixSteps) and as an
// escape hatch when snapshot memory matters more than verification
// speed.
//
// Deprecated: use WithFeatures(Features{Checkpoints: FeatureOff}).
func WithoutCheckpoints() LocateOption {
	return func(s *Settings) { s.Checkpoints = -1 }
}

// WithoutIncrementalReprune disables the incremental delta re-pruning of
// the dependence-graph engine: each Algorithm-2 iteration recomputes
// confidence over the whole slice from scratch instead of re-propagating
// only the cone invalidated by newly verified edges. The diagnosis is
// identical either way; the flag exists for A/B cost comparison (see
// Stats.Repropagated and Stats.DirtyFraction).
//
// Deprecated: use WithFeatures(Features{IncrementalReprune: FeatureOff}).
func WithoutIncrementalReprune() LocateOption {
	return func(s *Settings) { s.NoIncremental = true }
}

// WithoutStaticSkip disables the static skip-filter, which proves some
// verifications NOT_ID from the failing trace alone and answers them
// without a switched re-execution. The diagnosis is identical either
// way; the flag exists for A/B comparison of run counts.
//
// Deprecated: use WithFeatures(Features{StaticSkip: FeatureOff}).
func WithoutStaticSkip() LocateOption {
	return func(s *Settings) { s.NoStaticSkip = true }
}

// WithoutStaticReach disables the static reach filter, which proves
// whole candidate families NOT_ID from the interprocedural dependence
// graph before any execution (see docs/STATICDEP.md). The diagnosis is
// identical either way; the flag exists for A/B comparison of run
// counts (Stats.StaticReachSkips vs Stats.SwitchedRuns).
//
// Deprecated: use WithFeatures(Features{StaticReach: FeatureOff}).
func WithoutStaticReach() LocateOption {
	return func(s *Settings) { s.NoStaticReach = true }
}

// WithFeatures overlays the given feature tri-states onto the session's
// settings: non-default fields win, FeatureDefault fields leave the
// current configuration (including the legacy negative knobs) alone.
// The positive replacement for the Without* options above.
func WithFeatures(f Features) LocateOption {
	return func(s *Settings) { s.Features = s.Features.Overlay(f) }
}

// WithSpeculation enables pipelined speculative verification: after each
// expansion round the locator predicts the next round's candidate
// predicates and issues their switched runs while the re-prune is still
// running, so verify latency hides behind analysis latency
// (docs/SPECULATION.md). The diagnosis, counters and journal are
// byte-identical with or without it — only Stats.SpecIssued/SpecHits/
// SpecWasted and wall-clock time differ. Off by default: on single-CPU
// hosts speculative runs compete with demand work for the same core.
func WithSpeculation() LocateOption {
	return WithFeatures(Features{Speculation: core.FeatureOn})
}

// WithBackend selects the execution backend by name: "vm" (bytecode
// VM, the default) or "tree" (the tree-walking reference interpreter).
// Backends produce byte-identical diagnoses, counters and journals —
// the choice only changes wall-clock time. Unknown names surface as an
// error from Locate. See docs/VM.md.
func WithBackend(name string) LocateOption {
	return func(s *Settings) { s.Backend = name }
}

// WithObserver attaches an observer to the localization run: it receives
// the deterministic event stream — phase spans, counter deltas, final
// stats gauges. See NewJournal, NewProgress and docs/OBSERVABILITY.md.
func WithObserver(o Observer) LocateOption {
	return func(s *Settings) { s.Observer = o }
}

// WithTimeline captures the run's event stream in Diagnosis.Timeline
// (usable with or without WithObserver).
func WithTimeline() LocateOption {
	return func(s *Settings) { s.Timeline = true }
}

type funcOracle struct {
	p *Program
	f func(Instance, string) bool
}

func (o funcOracle) IsBenign(t *trace.Trace, entry int) bool {
	inst := t.At(entry).Inst
	return o.f(inst, o.p.StatementText(inst.Stmt))
}

// Candidate is one ranked fault candidate of the final slice.
type Candidate struct {
	Instance   Instance
	Statement  string
	Confidence float64
}

// Diagnosis is the outcome of the demand-driven localization.
type Diagnosis struct {
	// Located reports whether a root-cause instance entered the
	// candidate set (requires WithRootCause).
	Located bool
	// Root is the located root-cause instance.
	Root Instance
	// Candidates is the final pruned expanded slice (IPS), ranked most
	// suspicious first.
	Candidates []Candidate
	// Stats aggregates the run's counters: the paper's Table 3 terms
	// (UserPrunings, Verifications, Iterations, ExpandedEdges,
	// StrongEdges, ImplicitEdges) and the verification engine's cost
	// counters (SwitchedRuns, CacheHits/Misses, StaticSkips,
	// AlignedRegions).
	Stats Stats
	// Timeline is the run's full event stream when WithTimeline was set.
	Timeline []Event

	program *Program
}

// Explain renders a human-readable summary of the diagnosis.
func (d *Diagnosis) Explain() string {
	var sb strings.Builder
	if d.Located {
		fmt.Fprintf(&sb, "root cause located at %v: %s\n",
			d.Root, d.program.StatementText(d.Root.Stmt))
	} else {
		fmt.Fprintf(&sb, "root cause not located\n")
	}
	fmt.Fprintf(&sb, "%d user prunings, %d verifications, %d iterations, %d implicit edges (%d strong)\n",
		d.Stats.UserPrunings, d.Stats.Verifications, d.Stats.Iterations,
		d.Stats.ExpandedEdges, d.Stats.StrongEdges)
	fmt.Fprintf(&sb, "fault candidates (most suspicious first):\n")
	for i, c := range d.Candidates {
		if i >= 10 {
			fmt.Fprintf(&sb, "  ... and %d more\n", len(d.Candidates)-i)
			break
		}
		fmt.Fprintf(&sb, "  %-8v C=%.3f  %s\n", c.Instance, c.Confidence, c.Statement)
	}
	return sb.String()
}

// Locate runs the demand-driven localization procedure (Algorithm 2).
func (s *Session) Locate(opts ...LocateOption) (*Diagnosis, error) {
	return s.LocateContext(context.Background(), opts...)
}

// LocateContext is Locate bounded by ctx (nil = background): cancelling
// ctx or passing its deadline aborts the procedure — including
// in-flight switched re-executions on the verification workers — with
// an error matching ErrCanceled or ErrDeadline. The returned Diagnosis
// is then non-nil and partial: Stats and Timeline reflect the work done
// up to the abort, while Located and Candidates stay at their zero
// values.
func (s *Session) LocateContext(ctx context.Context, opts ...LocateOption) (*Diagnosis, error) {
	for _, o := range opts {
		o(&s.settings)
	}
	st := &s.settings

	bk, err := backend.Lookup(st.Backend)
	if err != nil {
		return nil, fmt.Errorf("eol: %w", err)
	}

	var orc core.Oracle
	switch {
	case st.Correct != nil:
		res := bk.Run(st.Correct.c, interp.Options{Input: s.input, BuildTrace: true, Ctx: ctx})
		if res.Err == nil && res.Trace != nil {
			orc = &oracle.StateOracle{Correct: res.Trace}
		}
	case st.Oracle != nil:
		orc = funcOracle{p: s.p, f: st.Oracle}
	}

	var mem *obs.Memory
	observer := st.Observer
	if st.Timeline {
		mem = &obs.Memory{}
		observer = obs.Tee(observer, mem)
	}

	spec := &core.Spec{
		Program:         s.p.c,
		Backend:         bk,
		Input:           s.input,
		Expected:        s.expected,
		RootCause:       st.RootCause,
		Oracle:          orc,
		Profile:         s.profile,
		MaxIterations:   st.MaxIterations,
		PathMode:        st.PathMode,
		PerturbFallback: st.PerturbFallback,
		CrossFunctionPD: st.CrossFunctionPD,
		VerifyWorkers:   st.VerifyWorkers,
		VerifyCacheSize: st.VerifyCacheSize,
		NoStaticSkip:    st.NoStaticSkip,
		NoStaticReach:   st.NoStaticReach,
		NoIncremental:   st.NoIncremental,
		Checkpoints:     st.Checkpoints,
		Features:        st.Features,
		Observer:        observer,
	}
	rep, err := core.LocateContext(ctx, spec)
	if rep == nil {
		return nil, err
	}
	d := &Diagnosis{
		Located: rep.Located,
		Stats:   rep.Stats,
		program: s.p,
	}
	if mem != nil {
		d.Timeline = mem.Events()
	}
	if err != nil {
		// Aborted (deadline, cancellation): hand back the partial
		// diagnosis alongside the error.
		return d, err
	}
	if rep.Located {
		d.Root = rep.Trace.At(rep.RootEntry).Inst
	}
	// The report's IPS entries come ranked from the analyzer.
	for i, e := range rep.IPSEntries {
		inst := rep.Trace.At(e).Inst
		d.Candidates = append(d.Candidates, Candidate{
			Instance:   inst,
			Statement:  s.p.StatementText(inst.Stmt),
			Confidence: rep.IPSConfidence[i],
		})
	}
	return d, nil
}

// ---------------------------------------------------------------------------
// Alignment and pruning, exposed for exploration

// AlignPoint finds the point in the switched execution that corresponds
// to `point` in the original execution, given that `switched` was
// produced by RunSwitched with predicate instance pred (Algorithm 1 of
// the paper). ok == false means no corresponding point exists — itself
// evidence of an implicit dependence (Definition 2 condition (i)).
func AlignPoint(orig, switched *Execution, pred, point Instance) (Instance, bool) {
	if orig.res.Trace == nil || switched.res.Trace == nil {
		return Instance{}, false
	}
	u := orig.res.Trace.FindInstance(point)
	if u < 0 {
		return Instance{}, false
	}
	return align.MatchInstance(orig.res.Trace, switched.res.Trace, pred, u)
}

// PrunedSlice runs confidence analysis over the failing run (without any
// interactive pruning) and returns the pruned dynamic slice as a ranked
// candidate list — the paper's PS. Profile runs added with AddProfileRun
// sharpen the fractional confidences.
func (s *Session) PrunedSlice() []Candidate {
	g := ddg.New(s.run.Trace)
	var correct []trace.Output
	for i := 0; i < s.seq; i++ {
		correct = append(correct, *s.run.Trace.OutputAt(i))
	}
	an := confidence.New(s.p.c, g, s.profile, correct, *s.run.Trace.OutputAt(s.seq))
	an.Compute()
	var res []Candidate
	for _, cand := range an.FaultCandidates() {
		inst := s.run.Trace.At(cand.Entry).Inst
		res = append(res, Candidate{
			Instance:   inst,
			Statement:  s.p.StatementText(inst.Stmt),
			Confidence: cand.Conf,
		})
	}
	return res
}

// Confidence returns the confidence value of one instance in the failing
// run under automatic (non-interactive) confidence analysis.
func (s *Session) Confidence(inst Instance) (float64, bool) {
	idx := s.run.Trace.FindInstance(inst)
	if idx < 0 {
		return 0, false
	}
	g := ddg.New(s.run.Trace)
	var correct []trace.Output
	for i := 0; i < s.seq; i++ {
		correct = append(correct, *s.run.Trace.OutputAt(i))
	}
	an := confidence.New(s.p.c, g, s.profile, correct, *s.run.Trace.OutputAt(s.seq))
	an.Compute()
	return an.Confidence(idx), true
}

// WithCorrectVersion supplies the correct program version as the
// benign-state oracle: an instance is benign iff its produced value, read
// values, branch outcome and outputs match the corresponding instance of
// the correct version's run on the same input (matched by a lockstep walk
// over the region trees). This mechanizes the paper's interactive
// protocol with ground truth and is what the evaluation harness uses.
// The correct version must be structurally identical (expression-level
// fault) for the pairing to be meaningful.
func WithCorrectVersion(correct *Program) LocateOption {
	return func(s *Settings) { s.Correct, s.Oracle = correct, nil }
}

// WithCrossFunctionPD extends potential dependences across function
// boundaries for global variables, so omissions inside callees become
// reachable (removes the intraprocedural limitation at the cost of more
// verification candidates).
func WithCrossFunctionPD() LocateOption {
	return func(s *Settings) { s.CrossFunctionPD = true }
}

// WithPerturbFallback enables the value-perturbation fallback (the
// paper's §5 proposal): when predicate switching exposes no implicit
// dependence — the nested-predicate soundness gap of Table 5(b) — the
// locator perturbs the values feeding the candidate predicates across
// comparison boundaries and the value profile instead.
func WithPerturbFallback() LocateOption {
	return func(s *Settings) { s.PerturbFallback = true }
}

// ---------------------------------------------------------------------------
// Corpus localization

// CorpusManifest describes a batch of localization subjects; see
// docs/CORPUS.md for the JSON format.
type CorpusManifest = corpus.Manifest

// CorpusSubject is one subject of a corpus manifest.
type CorpusSubject = corpus.Subject

// CorpusOptions configures LocateCorpus (shards, deadlines, cache
// sharing, fail-fast, journal observer).
type CorpusOptions = corpus.Options

// CorpusResult is the outcome of a corpus run: per-subject results in
// manifest order plus totals.
type CorpusResult = corpus.Result

// CorpusSubjectResult is the outcome of one corpus subject.
type CorpusSubjectResult = corpus.SubjectResult

// LoadCorpus reads and validates a corpus manifest file, resolving
// subject file references relative to the manifest's directory.
func LoadCorpus(path string) (*CorpusManifest, error) { return corpus.Load(path) }

// LocateCorpus localizes every subject of the manifest concurrently
// over a sharded session pool, sharing compiled programs and the
// switched-run cache across subjects, bounded end to end by ctx.
// Individual subject failures (deadline, budget, root cause not
// located) land in their CorpusSubjectResult — classify them with
// errors.Is against the eol error taxonomy or by the Class field —
// while LocateCorpus's own error is reserved for an invalid manifest.
// Per-subject counters, the journal, and the located/failed totals are
// byte-identical for any shard count; see docs/CORPUS.md.
func LocateCorpus(ctx context.Context, m *CorpusManifest, opts CorpusOptions) (*CorpusResult, error) {
	return corpus.Run(ctx, m, opts)
}

// CorpusShared is warm state shared across corpus runs: the compile
// cache, the switched-run cache, and the static dependence cache. Pass
// one via CorpusOptions.Shared to keep caches hot between LocateCorpus
// calls (this is what the eolserve daemon does per process).
type CorpusShared = corpus.Shared

// NewCorpusShared builds warm corpus state. cacheSize sizes the
// switched-run cache (0 = default, negative = disabled).
func NewCorpusShared(cacheSize int) *CorpusShared { return corpus.NewShared(cacheSize) }

// ---------------------------------------------------------------------------
// Localization service

// ServeConfig sizes a localization Server: per-request corpus options,
// session/queue bounds, per-tenant rate limits, and the async job
// table. The zero value is a usable development server. See
// docs/SERVER.md.
type ServeConfig = serve.Config

// Server is the resident localization service: LocateCorpus behind
// HTTP/JSON with persistent warm state, multi-tenant rate limiting,
// and admission control. It implements http.Handler; responses are
// byte-identical to eolcorpus batch output for the same subjects.
type Server = serve.Server

// NewServer builds a Server with fresh warm state.
func NewServer(cfg ServeConfig) *Server { return serve.New(cfg) }

// ---------------------------------------------------------------------------
// Observability

// Event is one record of a localization run's observability stream
// (see docs/OBSERVABILITY.md for the schema).
type Event = obs.Event

// Observer consumes a run's event stream.
type Observer = obs.Observer

// Stats aggregates a run's counters; see Diagnosis.Stats.
type Stats = obs.Stats

// Journal is a JSONL run-journal sink. The journal for a fixed
// configuration is byte-identical across runs and worker counts; call
// Flush when the run is done.
type Journal = obs.Journal

// NewJournal returns a Journal writing JSON Lines to w.
func NewJournal(w io.Writer) *Journal { return obs.NewJournal(w) }

// NewProgress returns an observer rendering a human-readable live view
// of the run to w.
func NewProgress(w io.Writer) Observer { return obs.NewProgress(w) }

// TeeObservers fans one event stream out to several observers (nils are
// dropped).
func TeeObservers(os ...Observer) Observer { return obs.Tee(os...) }

// VerifyByPerturbation checks whether `use` depends on the *definition*
// instance `def` by re-executing with def's value replaced by each
// candidate (the §5 alternative to predicate switching). It reports
// whether a dependence was exposed, the witnessing value, and the number
// of re-executions spent.
func (s *Session) VerifyByPerturbation(def, use Instance, candidates []int64) (dependent bool, witness int64, reexecutions int, err error) {
	d := s.run.Trace.FindInstance(def)
	u := s.run.Trace.FindInstance(use)
	if d < 0 || u < 0 {
		return false, 0, 0, fmt.Errorf("eol: instance not in the failing trace")
	}
	v := &implicit.Verifier{
		C: s.p.c, Input: s.input, Orig: s.run.Trace,
		WrongOut: *s.run.Trace.OutputAt(s.seq),
	}
	if s.seq < len(s.expected) {
		v.Vexp, v.HasVexp = s.expected[s.seq], true
	}
	res := v.PerturbVerify(implicit.PerturbRequest{Def: d, Use: u, Candidates: candidates})
	return res.Dependent, res.Witness, res.Reexecutions, nil
}
