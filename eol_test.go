package eol

import (
	"bytes"
	"errors"
	"reflect"
	"strings"
	"testing"

	"eol/internal/obs"
	"eol/internal/testsupport"
)

func fig1Session(t *testing.T) (*Session, *Program, *Program) {
	t.Helper()
	faulty := MustCompile(testsupport.Fig1Faulty)
	fixed := MustCompile(testsupport.Fig1Fixed)
	exp, err := fixed.Run(testsupport.Fig1Input)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSession(faulty, testsupport.Fig1Input, exp.Outputs())
	if err != nil {
		t.Fatal(err)
	}
	return s, faulty, fixed
}

func TestCompileAndRun(t *testing.T) {
	p := MustCompile(`func main() { print(2 + 3, " ", 4 * 5); }`)
	e, err := p.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(e.Outputs(), []int64{5, 20}) {
		t.Errorf("outputs = %v", e.Outputs())
	}
	if e.Rendered() != "5 20\n" {
		t.Errorf("rendered = %q", e.Rendered())
	}
	if e.Steps() < 1 {
		t.Error("no steps counted")
	}
	if len(e.Instances()) != e.Steps() {
		t.Errorf("instances (%d) != steps (%d)", len(e.Instances()), e.Steps())
	}
	if _, err := Compile("func main() { x = ; }"); err == nil {
		t.Error("bad program must not compile")
	}
}

func TestProgramIntrospection(t *testing.T) {
	p := MustCompile(testsupport.Fig1Faulty)
	id, ok := p.FindStatement("flags = 0")
	if !ok {
		t.Fatal("FindStatement failed")
	}
	if got := p.StatementText(id); got != "flags = 0;" {
		t.Errorf("StatementText = %q", got)
	}
	if p.NumStatements() < 10 {
		t.Errorf("NumStatements = %d", p.NumStatements())
	}
	if !strings.Contains(p.Listing(), "S1 ") {
		t.Errorf("Listing missing labels:\n%s", p.Listing())
	}
}

func TestSessionWrongOutput(t *testing.T) {
	s, _, _ := fig1Session(t)
	seq, got, want, at := s.WrongOutput()
	if seq != 1 || got != 0 || want != 8 {
		t.Errorf("WrongOutput = (%d, %d, %d)", seq, got, want)
	}
	if at.Stmt == 0 {
		t.Error("no producing instance")
	}
}

func TestSessionSlices(t *testing.T) {
	s, faulty, _ := fig1Session(t)
	root, _ := faulty.FindStatement("read() * 0")

	ds := s.DynamicSlice()
	rs := s.RelevantSlice()
	if ds.ContainsStmt(root) {
		t.Error("DS must miss the root cause")
	}
	if !rs.ContainsStmt(root) {
		t.Error("RS must contain the root cause")
	}
	if rs.Dynamic < ds.Dynamic || rs.Static < ds.Static {
		t.Errorf("RS (%d/%d) smaller than DS (%d/%d)", rs.Static, rs.Dynamic, ds.Static, ds.Dynamic)
	}
	if len(ds.Instances) != ds.Dynamic || len(ds.Statements) != ds.Static {
		t.Error("inconsistent slice counts")
	}
}

func TestSessionVerify(t *testing.T) {
	s, faulty, _ := fig1Session(t)
	ifID, _ := faulty.FindStatement("if (saveOrigName)")
	useID, _ := faulty.FindStatement("outbuf[outcnt] = flags")

	v, err := s.VerifyImplicitDependence(
		Instance{Stmt: ifID, Occ: 1}, Instance{Stmt: useID, Occ: 1}, "flags")
	if err != nil {
		t.Fatal(err)
	}
	if v != StrongImplicit {
		t.Errorf("verdict = %v, want STRONG_ID", v)
	}
	if v.String() != "STRONG_ID" {
		t.Errorf("String = %q", v.String())
	}

	if _, err := s.VerifyImplicitDependence(Instance{Stmt: ifID, Occ: 1},
		Instance{Stmt: useID, Occ: 1}, "nosuchvar"); err == nil {
		t.Error("unknown variable must error")
	}
}

func TestSessionPotentialDependences(t *testing.T) {
	s, faulty, _ := fig1Session(t)
	useID, _ := faulty.FindStatement("outbuf[outcnt] = flags")
	ifID, _ := faulty.FindStatement("if (saveOrigName)")
	pds := s.PotentialDependences(Instance{Stmt: useID, Occ: 1})
	found := false
	for _, p := range pds {
		if p.Stmt == ifID {
			found = true
		}
	}
	if !found {
		t.Errorf("PD = %v, want to include the if at S%d", pds, ifID)
	}
}

func TestSessionLocate(t *testing.T) {
	s, faulty, fixed := fig1Session(t)
	root, _ := faulty.FindStatement("read() * 0")

	// Ground-truth oracle via the fixed program: state is benign iff the
	// statement instance's effect matches the fixed run. For this API
	// test a simple text-based oracle suffices: only the chain statements
	// are corrupted.
	ifID, _ := faulty.FindStatement("if (saveOrigName)")
	writeID, _ := faulty.FindStatement("outbuf[outcnt] = flags")
	printID, _ := faulty.FindStatement("print(outbuf[1])")
	corrupted := map[int]bool{root: true, ifID: true, writeID: true, printID: true}

	diag, err := s.Locate(
		WithRootCause(root),
		WithOracle(func(inst Instance, text string) bool {
			return !corrupted[inst.Stmt]
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	if !diag.Located {
		t.Fatalf("not located: %s", diag.Explain())
	}
	if diag.Root.Stmt != root {
		t.Errorf("root = %v, want S%d", diag.Root, root)
	}
	if diag.Stats.StrongEdges < 1 {
		t.Errorf("no strong edges: %+v", diag)
	}
	if len(diag.Candidates) == 0 {
		t.Error("empty candidate list")
	}
	text := diag.Explain()
	if !strings.Contains(text, "root cause located") || !strings.Contains(text, "read() * 0") {
		t.Errorf("Explain:\n%s", text)
	}
	_ = fixed
}

func TestSessionNoFailure(t *testing.T) {
	fixed := MustCompile(testsupport.Fig1Fixed)
	e, err := fixed.Run(testsupport.Fig1Input)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewSession(fixed, testsupport.Fig1Input, e.Outputs()); !errors.Is(err, ErrNoFailure) {
		t.Errorf("err = %v, want ErrNoFailure", err)
	}
}

func TestRunSwitched(t *testing.T) {
	faulty := MustCompile(testsupport.Fig1Faulty)
	ifID, _ := faulty.FindStatement("if (saveOrigName)")
	e, err := faulty.RunSwitched(testsupport.Fig1Input, Instance{Stmt: ifID, Occ: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Switching repairs the flags byte.
	if e.Outputs()[1] != 8 {
		t.Errorf("switched outputs = %v, want flags byte 8", e.Outputs())
	}
}

func TestProfileRunsAccepted(t *testing.T) {
	s, _, _ := fig1Session(t)
	if err := s.AddProfileRun([]int64{0}); err != nil {
		t.Fatal(err)
	}
	// Locating still works with a profile present.
	diag, err := s.Locate()
	if err != nil {
		t.Fatal(err)
	}
	if len(diag.Candidates) == 0 {
		t.Error("no candidates")
	}
}

// TestVerifyByPerturbation exercises the §5 extension through the public
// API on the Table 5(b) scenario.
func TestVerifyByPerturbation(t *testing.T) {
	faultySrc := `
func main() {
    var A = read() * 0 + 5;
    var X = 1;
    if (A > 10) {
        if (A > 100) {
            X = 2;
        }
    }
    print(X);
}`
	p := MustCompile(faultySrc)
	s, err := NewSession(p, []int64{200}, []int64{2})
	if err != nil {
		t.Fatal(err)
	}
	aID, _ := p.FindStatement("var A =")
	prID, _ := p.FindStatement("print(X)")

	dep, witness, reexec, err := s.VerifyByPerturbation(
		Instance{Stmt: aID, Occ: 1}, Instance{Stmt: prID, Occ: 1},
		[]int64{7, 50, 200})
	if err != nil {
		t.Fatal(err)
	}
	if !dep || witness != 200 {
		t.Errorf("dep=%v witness=%d, want dependence via 200", dep, witness)
	}
	if reexec == 0 {
		t.Error("no re-executions counted")
	}

	// The full locator with the fallback finds the root cause.
	root, _ := p.FindStatement("read() * 0 + 5")
	diag, err := s.Locate(WithRootCause(root), WithPerturbFallback())
	if err != nil {
		t.Fatal(err)
	}
	if !diag.Located {
		t.Errorf("perturbation fallback did not locate:\n%s", diag.Explain())
	}
}

// TestFacadeSurface covers the remaining public helpers: plain runs,
// alignment, pruned slices, confidences, and the remaining options.
func TestFacadeSurface(t *testing.T) {
	faulty := MustCompile(testsupport.Fig1Faulty)
	if !strings.Contains(faulty.Source(), "saveOrigName") {
		t.Error("Source lost the program text")
	}
	plain, err := faulty.RunPlain(testsupport.Fig1Input)
	if err != nil {
		t.Fatal(err)
	}
	if len(plain.Instances()) != 0 {
		t.Error("plain run must have no trace instances")
	}
	if !reflect.DeepEqual(plain.Outputs(), []int64{8, 0}) {
		t.Errorf("plain outputs = %v", plain.Outputs())
	}

	// AlignPoint across a switched run.
	ifID, _ := faulty.FindStatement("if (saveOrigName)")
	prID, _ := faulty.FindStatement("print(outbuf[0])")
	orig, err := faulty.Run(testsupport.Fig1Input)
	if err != nil {
		t.Fatal(err)
	}
	switched, err := faulty.RunSwitched(testsupport.Fig1Input, Instance{Stmt: ifID, Occ: 1})
	if err != nil {
		t.Fatal(err)
	}
	m, ok := AlignPoint(orig, switched, Instance{Stmt: ifID, Occ: 1}, Instance{Stmt: prID, Occ: 1})
	if !ok || m.Stmt != prID {
		t.Errorf("AlignPoint = (%v, %v)", m, ok)
	}
	// Plain executions cannot be aligned.
	if _, ok := AlignPoint(plain, switched, Instance{Stmt: ifID, Occ: 1}, Instance{Stmt: prID, Occ: 1}); ok {
		t.Error("AlignPoint on a plain run must fail")
	}

	// PrunedSlice and Confidence.
	s, err := NewSession(faulty, testsupport.Fig1Input, []int64{8, 8})
	if err != nil {
		t.Fatal(err)
	}
	ps := s.PrunedSlice()
	if len(ps) == 0 {
		t.Fatal("empty pruned slice")
	}
	if ps[0].Confidence != 0 {
		t.Errorf("top candidate confidence = %v, want 0", ps[0].Confidence)
	}
	writeID, _ := faulty.FindStatement("outbuf[outcnt] = flags")
	conf, ok := s.Confidence(Instance{Stmt: writeID, Occ: 1})
	if !ok || conf != 0 {
		t.Errorf("Confidence(flags store) = (%v, %v), want (0, true)", conf, ok)
	}
	if _, ok := s.Confidence(Instance{Stmt: writeID, Occ: 99}); ok {
		t.Error("Confidence of a non-executed instance must fail")
	}

	// Verdict strings.
	if NotImplicit.String() != "NOT_ID" || Implicit.String() != "ID" {
		t.Error("verdict strings broken")
	}

	// Remaining locate options compose without breaking localization.
	root, _ := faulty.FindStatement("read() * 0")
	fixed := MustCompile(testsupport.Fig1Fixed)
	diag, err := s.Locate(
		WithRootCause(root),
		WithCorrectVersion(fixed),
		WithPathMode(),
		WithMaxIterations(5),
		WithCrossFunctionPD(),
	)
	if err != nil {
		t.Fatal(err)
	}
	if !diag.Located {
		t.Errorf("locate with all options failed:\n%s", diag.Explain())
	}
}

// TestObserverAndTimeline exercises the observability surface: the
// journal observer produces a schema-valid JSONL stream, WithTimeline
// captures the same events on the Diagnosis, and the stream agrees with
// the final Stats.
func TestObserverAndTimeline(t *testing.T) {
	s, faulty, fixed := fig1Session(t)
	root, _ := faulty.FindStatement("read() * 0")

	var buf bytes.Buffer
	j := NewJournal(&buf)
	diag, err := s.Locate(
		WithRootCause(root),
		WithCorrectVersion(fixed),
		WithObserver(j),
		WithTimeline(),
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Flush(); err != nil {
		t.Fatal(err)
	}
	if !diag.Located {
		t.Fatalf("not located:\n%s", diag.Explain())
	}
	if err := obs.ValidateJournal(bytes.NewReader(buf.Bytes())); err != nil {
		t.Errorf("journal does not validate: %v", err)
	}
	if len(diag.Timeline) == 0 {
		t.Fatal("WithTimeline captured no events")
	}
	if lines := strings.Count(buf.String(), "\n"); lines != len(diag.Timeline) {
		t.Errorf("journal has %d lines, timeline %d events", lines, len(diag.Timeline))
	}
	// The final gauges mirror Diagnosis.Stats.
	gauges := map[string]int64{}
	for _, e := range diag.Timeline {
		if e.Kind == obs.KindGauge {
			gauges[e.Name] = e.Value
		}
	}
	if gauges["verifications"] != int64(diag.Stats.Verifications) {
		t.Errorf("verifications gauge = %d, stats say %d",
			gauges["verifications"], diag.Stats.Verifications)
	}
	if gauges["switched_runs"] != diag.Stats.SwitchedRuns {
		t.Errorf("switched_runs gauge = %d, stats say %d",
			gauges["switched_runs"], diag.Stats.SwitchedRuns)
	}
	if loc, ok := gauges["located"]; !ok || loc != 1 {
		t.Errorf("located gauge = %d (present=%v), want 1", loc, ok)
	}

	// Timeline without an explicit observer works too, on a fresh session.
	s2, _, _ := fig1Session(t)
	diag2, err := s2.Locate(
		WithRootCause(root),
		WithCorrectVersion(fixed),
		WithTimeline(),
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(diag2.Timeline) != len(diag.Timeline) {
		t.Errorf("timeline-only run captured %d events, observer run %d",
			len(diag2.Timeline), len(diag.Timeline))
	}
}

// TestWithSettings checks the bulk-configuration option and that applied
// settings persist on the session.
func TestWithSettings(t *testing.T) {
	s, faulty, fixed := fig1Session(t)
	root, _ := faulty.FindStatement("read() * 0")
	diag, err := s.Locate(WithSettings(Settings{
		RootCause:     []int{root},
		Correct:       fixed,
		VerifyWorkers: 2,
		MaxIterations: 5,
	}))
	if err != nil {
		t.Fatal(err)
	}
	if !diag.Located {
		t.Fatalf("not located:\n%s", diag.Explain())
	}
}
