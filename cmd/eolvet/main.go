// Command eolvet runs the static checker suite (internal/check) over
// MiniC programs — the lint lane that keeps benchmark subjects and
// seeded faults trustworthy.
//
// Usage:
//
//	eolvet [flags] program.mc [more.mc ...]
//
//	-checks "dead-store,EOL0003"  run only the named analyzers
//	-min info|warning|error       minimum severity to report (default info)
//	-list                         print the analyzer catalog and exit
//	-codes                        print the machine-readable pass table and exit
//
// Diagnostics print one per line as pos: severity: code: message,
// prefixed with the file name when more than one file is given.
//
// Exit status: 0 if every program is clean, 1 if any diagnostic was
// reported or a program failed to compile, 2 on usage errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"eol/internal/check"
	"eol/internal/cliutil"
)

func main() {
	checksFlag := flag.String("checks", "", "comma-separated analyzer names or codes (default: all)")
	minFlag := flag.String("min", "info", "minimum severity to report: info, warning or error")
	listFlag := flag.Bool("list", false, "print the analyzer catalog and exit")
	codesFlag := flag.Bool("codes", false, "print the machine-readable pass table (code\\tname\\tseverity\\tsummary) and exit")
	flag.Parse()

	if *listFlag {
		for _, a := range check.Analyzers() {
			fmt.Printf("%s %-24s %-7s %s\n", a.Code, a.Name, a.Severity, firstLine(a.Doc))
		}
		return
	}

	// -codes is the registry's exchange format: one tab-separated row per
	// registered pass, golden-tested so docs/STATIC_CHECKS.md cannot
	// drift from the code (see cmd/cmd_integration_test.go).
	if *codesFlag {
		for _, a := range check.Analyzers() {
			fmt.Printf("%s\t%s\t%s\t%s\n", a.Code, a.Name, a.Severity, firstLine(a.Doc))
		}
		return
	}

	var min check.Severity
	switch *minFlag {
	case "info":
		min = check.Info
	case "warning":
		min = check.Warning
	case "error":
		min = check.Error
	default:
		cliutil.Usagef("eolvet: bad -min %q (want info, warning or error)", *minFlag)
	}

	analyzers := check.Analyzers()
	if *checksFlag != "" {
		analyzers = analyzers[:0]
		for _, name := range strings.Split(*checksFlag, ",") {
			a := check.ByName(strings.TrimSpace(name))
			if a == nil {
				cliutil.Usagef("eolvet: unknown analyzer %q (see -list)", name)
			}
			analyzers = append(analyzers, a)
		}
	}

	if flag.NArg() == 0 {
		cliutil.Usagef("usage: eolvet [flags] program.mc [more.mc ...] (see -h)")
	}

	dirty := false
	prefix := ""
	for _, path := range flag.Args() {
		if flag.NArg() > 1 {
			prefix = path + ": "
		}
		src, err := cliutil.LoadSource(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "eolvet: %v\n", err)
			dirty = true
			continue
		}
		u, err := check.Load(src)
		if err != nil {
			fmt.Fprintf(os.Stderr, "eolvet: %s: %v\n", path, err)
			dirty = true
			continue
		}
		for _, d := range check.RunAnalyzers(u, analyzers) {
			if d.Severity < min {
				continue
			}
			fmt.Printf("%s%s\n", prefix, d)
			dirty = true
		}
	}
	if dirty {
		os.Exit(1)
	}
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
