// Command slicer computes the paper's three slices — classic dynamic
// slice (DS), relevant slice (RS), and confidence-pruned slice (PS) — for
// a failing run of a MiniC program.
//
// Usage:
//
//	slicer -correct correct.mc [flags] faulty.mc
//
//	-input "1,2,3"    integer input stream (failing input)
//	-text "abc"       input as the bytes of a string
//	-backend B        execution backend: vm (default) or tree
//	-disasm           print the faulty program's compiled bytecode with
//	                  source-statement annotations and exit
//	-slices ds,rs,ps  which slices to print (default all)
//	-instances        list statement instances, not just statistics
//	-engine           print SPDG and dependence-graph engine statistics
//	-dot FILE         write the relevant-slice dependence graph (with
//	                  potential edges) as Graphviz DOT
//	-trace FILE       write the deterministic JSONL run journal
//	-progress         print live phase progress to stderr
//
// The correct version supplies the expected output; the first differing
// value is the wrong output the slices are computed from.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"eol/internal/backend"
	"eol/internal/cliutil"
	"eol/internal/confidence"
	"eol/internal/ddg"
	"eol/internal/interp"
	"eol/internal/lang/ast"
	"eol/internal/obs"
	"eol/internal/slicing"
	"eol/internal/staticdep"
	"eol/internal/trace"
	"eol/internal/vm"
)

func main() {
	inputFlag := flag.String("input", "", "comma-separated integer input")
	textFlag := flag.String("text", "", "input as the bytes of a string")
	correctFlag := flag.String("correct", "", "path to the correct program version")
	slicesFlag := flag.String("slices", "ds,rs,ps", "which slices to print")
	instFlag := flag.Bool("instances", false, "list statement instances")
	engineFlag := flag.Bool("engine", false, "print dependence-graph engine statistics per slice")
	dotFlag := flag.String("dot", "", "write the RS dependence graph as DOT to this file")
	disasmFlag := flag.Bool("disasm", false, "print the compiled bytecode listing and exit")
	var backendFlag string
	cliutil.RegisterBackendFlag(flag.CommandLine, &backendFlag)
	obsFlags := cliutil.RegisterObsFlags(flag.CommandLine)
	flag.Parse()

	if *disasmFlag {
		if flag.NArg() != 1 {
			cliutil.Usagef("usage: slicer -disasm faulty.mc")
		}
		fmt.Print(vm.Disassemble(mustCompile(flag.Arg(0))))
		return
	}

	if flag.NArg() != 1 || *correctFlag == "" {
		cliutil.Usagef("usage: slicer -correct correct.mc [flags] faulty.mc (see -h)")
	}
	input, err := cliutil.Input(*inputFlag, *textFlag)
	if err != nil {
		cliutil.Usagef("slicer: %v", err)
	}

	faulty := mustCompile(flag.Arg(0))
	correct := mustCompile(*correctFlag)

	bk, err := backend.Lookup(backendFlag)
	if err != nil {
		cliutil.Usagef("slicer: %v", err)
	}

	observer, closeObs, err := obsFlags.Observer()
	if err != nil {
		cliutil.Fatalf("slicer: %v", err)
	}
	rec := obs.NewRecorder(observer)

	expRun := bk.Run(correct, interp.Options{Input: input, Rec: rec})
	if expRun.Err != nil {
		cliutil.Fatalf("slicer: correct run: %v", expRun.Err)
	}
	rec.Begin("failing_run")
	run := bk.Run(faulty, interp.Options{Input: input, BuildTrace: true, Rec: rec})
	rec.End("failing_run", int64(run.Steps))
	if run.Err != nil {
		cliutil.Fatalf("slicer: faulty run: %v", run.Err)
	}

	seq, missing, ok := slicing.FirstWrongOutput(run.OutputValues(), expRun.OutputValues())
	if !ok {
		cliutil.Fatalf("slicer: outputs match; nothing to slice")
	}
	if missing {
		cliutil.Fatalf("slicer: failure is a truncated output stream; need a wrong value")
	}
	o := run.Trace.OutputAt(seq)
	fmt.Printf("wrong output #%d: got %d, expected %d (at %v)\n",
		seq, o.Value, expRun.OutputValues()[seq], run.Trace.At(o.Entry).Inst)

	rec.Begin("slicing")
	cx := slicing.NewContext(faulty, run.Trace)
	seed := slicing.FailureSeeds(run.Trace, seq)

	if *engineFlag {
		ss := staticdep.New(faulty, cx.Flow).Stats()
		fmt.Printf("SPDG: %d nodes, %d edges (control %d, data %d, summary %d), %d predicates (%d harmless cones)\n",
			ss.Nodes, ss.Edges(), ss.ControlEdges, ss.DataEdges, ss.SummaryEdges,
			ss.Predicates, ss.HarmlessCones)
	}

	if *dotFlag != "" {
		g := ddg.New(run.Trace)
		set := cx.Relevant(g, seed)
		f, err := os.Create(*dotFlag)
		if err != nil {
			cliutil.Fatalf("slicer: %v", err)
		}
		hl := ddg.NewSet(run.Trace.Len())
		hl.Add(seed)
		err = g.WriteDOT(f, ddg.DOTOptions{
			Only:      set,
			Highlight: hl,
			Label: func(i int) string {
				e := run.Trace.At(i)
				return fmt.Sprintf("%v %s", e.Inst, ast.StmtString(faulty.Info.Stmt(e.Inst.Stmt)))
			},
		})
		cerr := f.Close()
		if err != nil || cerr != nil {
			cliutil.Fatalf("slicer: writing DOT: %v %v", err, cerr)
		}
		fmt.Printf("wrote RS dependence graph to %s\n", *dotFlag)
	}

	for _, which := range strings.Split(*slicesFlag, ",") {
		switch strings.TrimSpace(strings.ToLower(which)) {
		case "ds":
			g := ddg.New(run.Trace)
			set := slicing.Dynamic(g, seed)
			printSlice(faulty, run.Trace, "DS (classic dynamic slice)", g, set, *instFlag)
			printEngine(g, nil, *engineFlag)
		case "rs":
			g := ddg.New(run.Trace)
			set := cx.Relevant(g, seed)
			printSlice(faulty, run.Trace, "RS (relevant slice)", g, set, *instFlag)
			printEngine(g, nil, *engineFlag)
		case "ps":
			g := ddg.New(run.Trace)
			var correctOuts []trace.Output
			for i := 0; i < seq; i++ {
				correctOuts = append(correctOuts, *run.Trace.OutputAt(i))
			}
			an := confidence.New(faulty, g, nil, correctOuts, *o)
			an.Compute()
			set := ddg.NewSet(run.Trace.Len())
			for _, cand := range an.FaultCandidates() {
				set.Add(cand.Entry)
			}
			printSlice(faulty, run.Trace, "PS (confidence-pruned slice)", g, set, *instFlag)
			printEngine(g, an, *engineFlag)
		default:
			cliutil.Usagef("slicer: unknown slice kind %q", which)
		}
	}
	rec.End("slicing", int64(run.Trace.Len()))
	if cerr := closeObs(); cerr != nil {
		cliutil.Fatalf("slicer: closing -trace journal: %v", cerr)
	}
}

func mustCompile(path string) *interp.Compiled {
	src, err := cliutil.LoadSource(path)
	if err != nil {
		cliutil.Fatalf("slicer: %v", err)
	}
	c, err := interp.Compile(src)
	if err != nil {
		cliutil.Fatalf("slicer: %s: %v", path, err)
	}
	return c
}

// printEngine reports the depgraph engine's shape for the slice just
// printed: immutable CSR base vs analysis-added overlay (broken out by
// edge kind), and the last re-prune pass's dirty fraction when a
// confidence analyzer ran. A single slicer invocation computes each
// slice in one pass, so the fraction is n/a unless something (an
// expansion, a pin) forced a re-prune.
func printEngine(g *ddg.Graph, an *confidence.Analyzer, enabled bool) {
	if !enabled {
		return
	}
	es := g.EngineStats()
	dirty := "n/a"
	if an != nil {
		if passes, reeval := an.RepropStats(); passes > 0 && es.Nodes > 0 {
			dirty = fmt.Sprintf("%.3f", float64(reeval)/(float64(passes)*float64(es.Nodes)))
		}
	}
	fmt.Printf("  engine: %d nodes, %d CSR base edges, %d overlay edges (pd %d, id %d, sid %d), last dirty fraction %s\n",
		es.Nodes, es.BaseEdges, es.OverlayEdges,
		g.NumExtraEdges(ddg.Potential),
		g.NumExtraEdges(ddg.Implicit),
		g.NumExtraEdges(ddg.StrongImplicit),
		dirty)
}

func printSlice(c *interp.Compiled, tr *trace.Trace, title string, g *ddg.Graph, set *ddg.Set, insts bool) {
	stats := g.Stats(set)
	fmt.Printf("\n%s: %d statements, %d instances\n", title, stats.Static, stats.Dynamic)
	if insts {
		for _, i := range set.Ordered() {
			e := tr.At(i)
			fmt.Printf("  %-9v %s\n", e.Inst, ast.StmtString(c.Info.Stmt(e.Inst.Stmt)))
		}
		return
	}
	seen := map[int]bool{}
	for _, i := range set.Ordered() {
		id := tr.At(i).Inst.Stmt
		if !seen[id] {
			seen[id] = true
			fmt.Printf("  S%-4d %s\n", id, ast.StmtString(c.Info.Stmt(id)))
		}
	}
}
