// Package cmd_test builds the command-line tools once and drives them
// end-to-end on the Fig. 1 test programs — integration coverage for the
// binaries themselves (flag parsing, file IO, output formats).
package cmd_test

import (
	"errors"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

var (
	buildOnce sync.Once
	binDir    string
	buildErr  error
	repoRoot  string
)

// bin builds (once) and returns the path of the named tool.
func bin(t *testing.T, name string) string {
	t.Helper()
	buildOnce.Do(func() {
		var err error
		repoRoot, err = filepath.Abs("..")
		if err != nil {
			buildErr = err
			return
		}
		binDir, err = os.MkdirTemp("", "eolbin")
		if err != nil {
			buildErr = err
			return
		}
		for _, tool := range []string{"minic", "slicer", "eoloc", "benchtab", "eolvet", "eolcorpus"} {
			cmd := exec.Command("go", "build", "-o", filepath.Join(binDir, tool), "./cmd/"+tool)
			cmd.Dir = repoRoot
			if out, err := cmd.CombinedOutput(); err != nil {
				buildErr = err
				t.Logf("build %s: %s", tool, out)
				return
			}
		}
	})
	if buildErr != nil {
		t.Fatalf("building tools: %v", buildErr)
	}
	return filepath.Join(binDir, name)
}

func runTool(t *testing.T, name string, args ...string) (string, error) {
	t.Helper()
	cmd := exec.Command(bin(t, name), args...)
	cmd.Dir = repoRoot
	out, err := cmd.CombinedOutput()
	return string(out), err
}

// runExit runs a tool and returns its combined output and exit code.
func runExit(t *testing.T, name string, args ...string) (string, int) {
	t.Helper()
	cmd := exec.Command(bin(t, name), args...)
	cmd.Dir = repoRoot
	out, err := cmd.CombinedOutput()
	if err == nil {
		return string(out), 0
	}
	var ee *exec.ExitError
	if !errors.As(err, &ee) {
		t.Fatalf("%s %v: %v", name, args, err)
	}
	return string(out), ee.ExitCode()
}

func TestMinicRun(t *testing.T) {
	out, err := runTool(t, "minic", "-input", "1", "testdata/fig1_faulty.mc")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if out != "8\n0\n" {
		t.Errorf("output = %q, want \"8\\n0\\n\"", out)
	}
}

func TestMinicList(t *testing.T) {
	out, err := runTool(t, "minic", "-list", "testdata/fig1_faulty.mc")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(out, "S5") || !strings.Contains(out, "read() * 0") {
		t.Errorf("listing missing statements:\n%s", out)
	}
}

func TestMinicSwitch(t *testing.T) {
	// Switching the first saveOrigName if (S8) repairs the flags byte.
	out, err := runTool(t, "minic", "-input", "1", "-switch", "8:1", "testdata/fig1_faulty.mc")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.HasPrefix(out, "8\n8\n") {
		t.Errorf("switched output = %q, want to start with \"8\\n8\\n\"", out)
	}
}

func TestMinicPerturb(t *testing.T) {
	out, err := runTool(t, "minic", "-input", "1", "-perturb", "5:1:1", "testdata/fig1_faulty.mc")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.HasPrefix(out, "8\n8\n") {
		t.Errorf("perturbed output = %q", out)
	}
}

func TestMinicBadFlags(t *testing.T) {
	if out, err := runTool(t, "minic", "-switch", "zz", "testdata/fig1_faulty.mc"); err == nil {
		t.Errorf("bad -switch accepted:\n%s", out)
	}
	if out, err := runTool(t, "minic", "nosuchfile.mc"); err == nil {
		t.Errorf("missing file accepted:\n%s", out)
	}
	if out, err := runTool(t, "minic", "-input", "1", "-text", "a", "testdata/fig1_faulty.mc"); err == nil {
		t.Errorf("conflicting inputs accepted:\n%s", out)
	}
}

func TestSlicer(t *testing.T) {
	out, err := runTool(t, "slicer",
		"-correct", "testdata/fig1_fixed.mc", "-input", "1", "testdata/fig1_faulty.mc")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	for _, want := range []string{
		"wrong output #1: got 0, expected 8",
		"DS (classic dynamic slice): 5 statements",
		"RS (relevant slice): 8 statements",
		"PS (confidence-pruned slice):",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("slicer output missing %q:\n%s", want, out)
		}
	}
	// DS must not list the root cause; RS must.
	dsPart := out[strings.Index(out, "DS ("):strings.Index(out, "RS (")]
	if strings.Contains(dsPart, "saveOrigName = read() * 0") {
		t.Error("DS lists the root cause")
	}
	rsPart := out[strings.Index(out, "RS ("):strings.Index(out, "PS (")]
	if !strings.Contains(rsPart, "saveOrigName = read() * 0") {
		t.Error("RS misses the root cause")
	}
}

// TestDisasmGolden pins the -disasm bytecode listing (pc, opcode,
// operands, source-statement annotations) against the golden file, via
// both commands that expose the flag.
func TestDisasmGolden(t *testing.T) {
	golden, err := os.ReadFile("../testdata/fig1_faulty.disasm")
	if err != nil {
		t.Fatal(err)
	}
	out, err := runTool(t, "slicer", "-disasm", "testdata/fig1_faulty.mc")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if out != string(golden) {
		t.Errorf("slicer -disasm diverges from golden file:\n got:\n%s\nwant:\n%s", out, golden)
	}

	cmd := exec.Command("go", "build", "-o", filepath.Join(binDir, "eolshell"), "./cmd/eolshell")
	cmd.Dir = repoRoot
	if bout, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("build eolshell: %v\n%s", err, bout)
	}
	out, err = runTool(t, "eolshell", "-disasm", "testdata/fig1_faulty.mc")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if out != string(golden) {
		t.Errorf("eolshell -disasm diverges from golden file:\n got:\n%s\nwant:\n%s", out, golden)
	}
}

// TestSlicerBackends runs the same slicing twice, once per execution
// backend, and requires byte-identical output — the CLI-level
// differential check.
func TestSlicerBackends(t *testing.T) {
	args := func(b string) []string {
		return []string{"-backend", b,
			"-correct", "testdata/fig1_fixed.mc", "-input", "1", "testdata/fig1_faulty.mc"}
	}
	vmOut, err := runTool(t, "slicer", args("vm")...)
	if err != nil {
		t.Fatalf("vm: %v\n%s", err, vmOut)
	}
	treeOut, err := runTool(t, "slicer", args("tree")...)
	if err != nil {
		t.Fatalf("tree: %v\n%s", err, treeOut)
	}
	if vmOut != treeOut {
		t.Errorf("backends diverge:\nvm:\n%s\ntree:\n%s", vmOut, treeOut)
	}
	if out, err := runTool(t, "slicer", "-backend", "quantum",
		"-correct", "testdata/fig1_fixed.mc", "-input", "1", "testdata/fig1_faulty.mc"); err == nil {
		t.Errorf("unknown backend accepted:\n%s", out)
	}
}

// TestSlicerEngineStats checks that -engine reports both the static
// SPDG shape (nodes, per-kind edges, cones) and the per-slice dynamic
// engine line.
func TestSlicerEngineStats(t *testing.T) {
	out, err := runTool(t, "slicer", "-correct", "testdata/fig1_fixed.mc",
		"-input", "1", "-engine", "-slices", "ds", "testdata/fig1_faulty.mc")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if want := "SPDG: 18 nodes, 20 edges (control 3, data 17, summary 0), 2 predicates (0 harmless cones)"; !strings.Contains(out, want) {
		t.Errorf("missing %q:\n%s", want, out)
	}
	if !strings.Contains(out, "engine: ") {
		t.Errorf("missing dynamic engine line:\n%s", out)
	}
}

func TestSlicerDOT(t *testing.T) {
	dot := filepath.Join(t.TempDir(), "g.dot")
	out, err := runTool(t, "slicer",
		"-correct", "testdata/fig1_fixed.mc", "-input", "1",
		"-dot", dot, "-slices", "ds", "testdata/fig1_faulty.mc")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	data, err := os.ReadFile(dot)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "digraph ddg {") {
		t.Errorf("DOT file malformed:\n%s", data)
	}
}

func TestEoloc(t *testing.T) {
	out, err := runTool(t, "eoloc",
		"-correct", "testdata/fig1_fixed.mc", "-input", "1",
		"-root", "read() * 0", "testdata/fig1_faulty.mc")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	for _, want := range []string{
		"ROOT CAUSE located: S5#1",
		"1 implicit edges (1 strong)",
		"final fault candidate set",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("eoloc output missing %q:\n%s", want, out)
		}
	}
}

func TestEolocReport(t *testing.T) {
	rpt := filepath.Join(t.TempDir(), "report.md")
	out, err := runTool(t, "eoloc",
		"-correct", "testdata/fig1_fixed.mc", "-input", "1",
		"-root", "read() * 0", "-report", rpt, "testdata/fig1_faulty.mc")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	data, err := os.ReadFile(rpt)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "# Execution omission localization report") ||
		!strings.Contains(string(data), "ROOT CAUSE") {
		t.Errorf("report malformed:\n%s", data)
	}
}

func TestBenchtabCases(t *testing.T) {
	out, err := runTool(t, "benchtab", "-cases")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	for _, want := range []string{"flexsim/V1-F9", "grepsim/V4-F2", "gzipsim/V2-F3", "sedsim/V3-F2"} {
		if !strings.Contains(out, want) {
			t.Errorf("case list missing %s:\n%s", want, out)
		}
	}
}

func TestBenchtabTable1(t *testing.T) {
	out, err := runTool(t, "benchtab", "-table", "1")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(out, "Table 1") || !strings.Contains(out, "flexsim") {
		t.Errorf("table 1 output:\n%s", out)
	}
}

func TestCritpredCLI(t *testing.T) {
	// Build critpred too (not in the initial tool list).
	cmd := exec.Command("go", "build", "-o", filepath.Join(binDir, "critpred"), "./cmd/critpred")
	cmd.Dir = repoRoot
	bin(t, "minic") // ensure binDir exists
	cmd = exec.Command("go", "build", "-o", filepath.Join(binDir, "critpred"), "./cmd/critpred")
	cmd.Dir = repoRoot
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("build critpred: %v\n%s", err, out)
	}
	out, err := runTool(t, "critpred",
		"-correct", "testdata/fig1_fixed.mc", "-input", "1", "testdata/fig1_faulty.mc")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(out, "CRITICAL PREDICATE: S8#1") {
		t.Errorf("critpred output:\n%s", out)
	}
	out, err = runTool(t, "critpred",
		"-correct", "testdata/fig1_fixed.mc", "-input", "1",
		"-strategy", "lefs", "testdata/fig1_faulty.mc")
	if err != nil || !strings.Contains(out, "LEFS order") {
		t.Errorf("lefs run: %v\n%s", err, out)
	}
}

func TestEolshellSession(t *testing.T) {
	cmd := exec.Command("go", "build", "-o", filepath.Join(binDir, "eolshell"), "./cmd/eolshell")
	bin(t, "minic") // ensure binDir exists
	cmd = exec.Command("go", "build", "-o", filepath.Join(binDir, "eolshell"), "./cmd/eolshell")
	cmd.Dir = repoRoot
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("build eolshell: %v\n%s", err, out)
	}
	// The paper's protocol: declare the chain corrupted (n), prune the
	// benign rest (y), expand, list, quit.
	sh := exec.Command(filepath.Join(binDir, "eolshell"),
		"-correct", "testdata/fig1_fixed.mc", "-input", "1", "testdata/fig1_faulty.mc")
	sh.Dir = repoRoot
	sh.Stdin = strings.NewReader("n\nn\ny\ny\ny\ne\nl\nq\n")
	out, err := sh.CombinedOutput()
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	text := string(out)
	for _, want := range []string{
		"wrong output #1: got 0, expected 8",
		"VerifyDep(S8#1 -> S12#1) = STRONG_ID",
		"implicit edge(s) added",
		"var saveOrigName = read() * 0;", // the root cause enters the list
		"2 verifications performed",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("session transcript missing %q:\n%s", want, text)
		}
	}
}

func TestEolshellExpectedFlag(t *testing.T) {
	bin(t, "minic")
	cmd := exec.Command("go", "build", "-o", filepath.Join(binDir, "eolshell"), "./cmd/eolshell")
	cmd.Dir = repoRoot
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("build eolshell: %v\n%s", err, out)
	}
	sh := exec.Command(filepath.Join(binDir, "eolshell"),
		"-expected", "8,8", "-input", "1", "testdata/fig1_faulty.mc")
	sh.Dir = repoRoot
	sh.Stdin = strings.NewReader("q\n")
	out, err := sh.CombinedOutput()
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(string(out), "wrong output #1") {
		t.Errorf("transcript:\n%s", out)
	}
}

func TestMinicCFGDot(t *testing.T) {
	out, err := runTool(t, "minic", "-cfgdot", "main", "testdata/fig1_faulty.mc")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	for _, want := range []string{"digraph cfg_main {", "shape=diamond", "ENTRY", "EXIT"} {
		if !strings.Contains(out, want) {
			t.Errorf("CFG DOT missing %q", want)
		}
	}
	if out, err := runTool(t, "minic", "-cfgdot", "nosuchfn", "testdata/fig1_faulty.mc"); err == nil {
		t.Errorf("unknown function accepted:\n%s", out)
	}
}

// TestExitCodes pins the exit-code contract across the tools: 0 for
// success, 1 for operational failures (missing files, compile errors,
// runtime faults, lint findings), 2 for command-line misuse.
func TestExitCodes(t *testing.T) {
	cases := []struct {
		name string
		tool string
		args []string
		want int
	}{
		{"minic ok", "minic", []string{"-input", "1", "testdata/fig1_faulty.mc"}, 0},
		{"minic no args", "minic", nil, 2},
		{"minic conflicting inputs", "minic", []string{"-input", "1", "-text", "a", "testdata/fig1_faulty.mc"}, 2},
		{"minic bad -switch", "minic", []string{"-switch", "zz", "testdata/fig1_faulty.mc"}, 2},
		{"minic unknown -cfgdot func", "minic", []string{"-cfgdot", "nosuchfn", "testdata/fig1_faulty.mc"}, 2},
		{"minic missing file", "minic", []string{"nosuchfile.mc"}, 1},
		{"slicer missing -correct", "slicer", []string{"testdata/fig1_faulty.mc"}, 2},
		{"slicer bad slice kind", "slicer", []string{"-correct", "testdata/fig1_fixed.mc", "-input", "1", "-slices", "zz", "testdata/fig1_faulty.mc"}, 2},
		{"slicer missing file", "slicer", []string{"-correct", "testdata/fig1_fixed.mc", "nosuchfile.mc"}, 1},
		{"eoloc missing -correct", "eoloc", []string{"testdata/fig1_faulty.mc"}, 2},
		{"eoloc bad -root", "eoloc", []string{"-correct", "testdata/fig1_fixed.mc", "-input", "1", "-root", "nosuchfragment", "testdata/fig1_faulty.mc"}, 2},
		{"benchtab no mode", "benchtab", nil, 2},
		{"eolcorpus no args", "eolcorpus", nil, 2},
		{"eolcorpus missing manifest", "eolcorpus", []string{"nosuchmanifest.json"}, 1},
		{"eolcorpus smoke (deadline subject fails)", "eolcorpus", []string{"testdata/corpus/smoke.json"}, 1},
		{"eolvet ok", "eolvet", []string{"testdata/fig1_fixed.mc"}, 0},
		{"eolvet findings", "eolvet", []string{"testdata/lint/eol0003.mc"}, 1},
		{"eolvet missing file", "eolvet", []string{"nosuchfile.mc"}, 1},
		{"eolvet no args", "eolvet", nil, 2},
		{"eolvet unknown check", "eolvet", []string{"-checks", "nosuchcheck", "testdata/fig1_fixed.mc"}, 2},
		{"eolvet bad -min", "eolvet", []string{"-min", "loud", "testdata/fig1_fixed.mc"}, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			out, code := runExit(t, tc.tool, tc.args...)
			if code != tc.want {
				t.Errorf("exit code = %d, want %d\n%s", code, tc.want, out)
			}
		})
	}
}

// TestEolvetLintFixtures runs eolvet over each known-bad fixture in
// testdata/lint and compares against its golden output; each fixture
// must flag its own code (eol000N.mc -> EOL000N) and exit 1.
func TestEolvetLintFixtures(t *testing.T) {
	bin(t, "eolvet") // sets repoRoot
	fixtures, err := filepath.Glob(filepath.Join(repoRoot, "testdata", "lint", "*.mc"))
	if err != nil || len(fixtures) == 0 {
		t.Fatalf("no lint fixtures: %v", err)
	}
	for _, fix := range fixtures {
		rel, _ := filepath.Rel(repoRoot, fix)
		t.Run(filepath.Base(fix), func(t *testing.T) {
			out, code := runExit(t, "eolvet", rel)
			if code != 1 {
				t.Errorf("exit code = %d, want 1", code)
			}
			want := "EOL" + strings.TrimSuffix(strings.TrimPrefix(filepath.Base(fix), "eol"), ".mc")
			if !strings.Contains(out, want) {
				t.Errorf("output missing %s:\n%s", want, out)
			}
			golden, err := os.ReadFile(strings.TrimSuffix(fix, ".mc") + ".golden")
			if err != nil {
				t.Fatal(err)
			}
			if out != string(golden) {
				t.Errorf("output differs from golden:\n got: %s\nwant: %s", out, golden)
			}
		})
	}
}

// TestEolvetCodes pins the machine-readable pass table and keeps
// docs/STATIC_CHECKS.md in lockstep with the registry: every row must
// have a matching "### CODE `name` (severity)" catalog heading, and
// every catalog heading must correspond to a registered pass.
func TestEolvetCodes(t *testing.T) {
	out, code := runExit(t, "eolvet", "-codes")
	if code != 0 {
		t.Fatalf("exit code = %d, want 0\n%s", code, out)
	}
	golden, err := os.ReadFile(filepath.Join(repoRoot, "testdata", "eolvet_codes.golden"))
	if err != nil {
		t.Fatal(err)
	}
	if out != string(golden) {
		t.Errorf("table differs from golden:\n got: %s\nwant: %s", out, golden)
	}
	docBytes, err := os.ReadFile(filepath.Join(repoRoot, "docs", "STATIC_CHECKS.md"))
	if err != nil {
		t.Fatal(err)
	}
	doc := string(docBytes)
	registered := map[string]bool{}
	for _, line := range strings.Split(strings.TrimSuffix(out, "\n"), "\n") {
		f := strings.Split(line, "\t")
		if len(f) != 4 {
			t.Fatalf("malformed -codes row %q", line)
		}
		registered[f[0]] = true
		heading := "### " + f[0] + " `" + f[1] + "` (" + f[2] + ")"
		if !strings.Contains(doc, heading) {
			t.Errorf("docs/STATIC_CHECKS.md missing catalog heading %q", heading)
		}
	}
	for _, line := range strings.Split(doc, "\n") {
		if !strings.HasPrefix(line, "### EOL") {
			continue
		}
		code := strings.Fields(line)[1]
		if !registered[code] {
			t.Errorf("docs/STATIC_CHECKS.md documents %s but no such pass is registered", code)
		}
	}
}

// TestMinicVet checks the -vet convenience entry point.
func TestMinicVet(t *testing.T) {
	if out, code := runExit(t, "minic", "-vet", "testdata/fig1_faulty.mc"); code != 0 {
		t.Errorf("fig1_faulty: exit %d, want 0 (clean):\n%s", code, out)
	}
	out, code := runExit(t, "minic", "-vet", "testdata/lint/eol0007.mc")
	if code != 1 || !strings.Contains(out, "EOL0007") {
		t.Errorf("lint fixture: exit %d, output:\n%s", code, out)
	}
}

func TestMinicSaveTrace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.gob")
	out, err := runTool(t, "minic", "-input", "1", "-savetrace", path, "testdata/fig1_faulty.mc")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(out, "trace saved") {
		t.Errorf("output:\n%s", out)
	}
	if fi, err := os.Stat(path); err != nil || fi.Size() == 0 {
		t.Errorf("trace file missing or empty: %v", err)
	}
}

// TestEolcorpusSmoke drives eolcorpus over the smoke manifest: the two
// fig1 subjects locate, the slow subject hits its 5ms deadline, and the
// default JSON output is byte-identical across shard counts.
func TestEolcorpusSmoke(t *testing.T) {
	out1, code1 := runExit(t, "eolcorpus", "-shards", "1", "testdata/corpus/smoke.json")
	out4, code4 := runExit(t, "eolcorpus", "-shards", "4", "testdata/corpus/smoke.json")
	if code1 != 1 || code4 != 1 {
		t.Fatalf("exit codes = %d/%d, want 1 (deadline subject fails)\n%s", code1, code4, out1)
	}
	// Strip the stderr tail line ("N of M subjects failed"); the JSON
	// body must be byte-identical between shard counts.
	strip := func(s string) string {
		if i := strings.Index(s, "eolcorpus:"); i >= 0 {
			return s[:i]
		}
		return s
	}
	if strip(out1) != strip(out4) {
		t.Errorf("default output differs between -shards 1 and 4:\n--- 1:\n%s\n--- 4:\n%s", out1, out4)
	}
	for _, want := range []string{`"name": "fig1"`, `"located": true`, `"class": "deadline"`, `"failed": 1`} {
		if !strings.Contains(out1, want) {
			t.Errorf("output missing %s:\n%s", want, out1)
		}
	}
}

// TestEolocDeadline exercises eoloc's -deadline flag: a generous bound
// changes nothing; a millisecond bound aborts with the deadline class.
func TestEolocDeadline(t *testing.T) {
	out, err := runTool(t, "eoloc", "-correct", "testdata/fig1_fixed.mc", "-input", "1",
		"-root", "read() * 0", "-deadline", "30s", "testdata/fig1_faulty.mc")
	if err != nil {
		t.Fatalf("eoloc -deadline 30s: %v\n%s", err, out)
	}
	if !strings.Contains(out, "ROOT CAUSE located") {
		t.Errorf("missing located line:\n%s", out)
	}

	out, code := runExit(t, "eoloc", "-correct", "testdata/corpus/slow_loop.mc", "-input", "3",
		"-deadline", "5ms", "testdata/corpus/slow_loop.mc")
	if code != 1 {
		t.Fatalf("eoloc -deadline 5ms: exit %d, want 1\n%s", code, out)
	}
	if !strings.Contains(out, "[deadline]") {
		t.Errorf("missing [deadline] class tag:\n%s", out)
	}
}
