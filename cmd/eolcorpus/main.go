// Command eolcorpus runs a corpus of localization subjects — a JSON
// manifest of (faulty program, failing input, expected output) triples —
// concurrently over a sharded session pool, and reports one JSON
// document with a per-subject result row plus corpus totals.
//
// Usage:
//
//	eolcorpus [flags] manifest.json
//
//	-shards N       concurrent localization sessions (0 = GOMAXPROCS)
//	-deadline D     default per-subject wall-clock bound, Go duration
//	                syntax; a subject's own "deadline" overrides it
//	-fail-fast      cancel remaining subjects after the first failure
//	-workers N      verification workers per session (0 = GOMAXPROCS)
//	-cache N        shared switched-run cache size (negative = off)
//	-private-cache  per-subject caches instead of one shared cache
//	-timing         include wall-clock / shard / cache fields, which
//	                vary run to run (default output is deterministic)
//	-o FILE         write the JSON result there instead of stdout
//	-trace FILE     write the deterministic JSONL corpus journal
//	-progress       print live progress to stderr
//
// The JSON result is the versioned wire document of internal/api
// (api.CorpusReport, schema_version 1) — byte-identical to what an
// eolserve instance responds with for the same subjects. The default
// output and the -trace journal carry only scheduling-independent
// fields and are byte-identical for any -shards value (see
// docs/CORPUS.md and docs/SERVER.md). Exit status: 0 when every subject
// completed, 1 when any subject failed (deadline, budget, compile
// error, root cause not located), 2 for command-line misuse.
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"os"

	"eol/internal/api"
	"eol/internal/cliutil"
	"eol/internal/corpus"
)

func main() {
	shardsFlag := flag.Int("shards", 0, "concurrent localization sessions (0 = GOMAXPROCS)")
	deadlineFlag := flag.Duration("deadline", 0, "default per-subject wall-clock bound (e.g. 30s; 0 = none)")
	failFastFlag := flag.Bool("fail-fast", false, "cancel remaining subjects after the first failure")
	privateFlag := flag.Bool("private-cache", false, "per-subject switched-run caches instead of one shared cache")
	timingFlag := flag.Bool("timing", false, "include scheduling-dependent fields (timings, shards, cache counters)")
	outFlag := flag.String("o", "", "write the JSON result to this `file` instead of stdout")
	engFlags := cliutil.RegisterEngineFlags(flag.CommandLine)
	obsFlags := cliutil.RegisterObsFlags(flag.CommandLine)
	flag.Parse()

	if flag.NArg() != 1 {
		cliutil.Usagef("usage: eolcorpus [flags] manifest.json (see -h)")
	}

	m, err := corpus.Load(flag.Arg(0))
	if err != nil {
		cliutil.Fatalf("eolcorpus: %v", err)
	}

	observer, closeObs, err := obsFlags.Observer()
	if err != nil {
		cliutil.Fatalf("eolcorpus: %v", err)
	}

	res, err := corpus.Run(context.Background(), m, corpus.Options{
		Shards:        *shardsFlag,
		Deadline:      *deadlineFlag,
		FailFast:      *failFastFlag,
		VerifyWorkers: engFlags.Workers,
		CacheSize:     engFlags.Cache,
		NoSharedCache: *privateFlag,
		Checkpoints:   engFlags.Checkpoints,
		Features:      engFlags.Features(),
		Backend:       engFlags.Backend,
		Observer:      observer,
	})
	if cerr := closeObs(); cerr != nil {
		cliutil.Fatalf("eolcorpus: closing -trace journal: %v", cerr)
	}
	if err != nil {
		cliutil.Fatalf("eolcorpus: %v", err)
	}

	out := api.NewCorpusReport(res, *timingFlag, *shardsFlag)

	var buf bytes.Buffer
	if err := api.Encode(&buf, out); err != nil {
		cliutil.Fatalf("eolcorpus: %v", err)
	}
	if *outFlag != "" {
		if err := os.WriteFile(*outFlag, buf.Bytes(), 0o644); err != nil {
			cliutil.Fatalf("eolcorpus: %v", err)
		}
	} else {
		os.Stdout.Write(buf.Bytes())
	}

	if res.Failed > 0 {
		fmt.Fprintf(os.Stderr, "eolcorpus: %d of %d subjects failed\n", res.Failed, out.Total)
		os.Exit(1)
	}
}
