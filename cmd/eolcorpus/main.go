// Command eolcorpus runs a corpus of localization subjects — a JSON
// manifest of (faulty program, failing input, expected output) triples —
// concurrently over a sharded session pool, and reports one JSON
// document with a per-subject result row plus corpus totals.
//
// Usage:
//
//	eolcorpus [flags] manifest.json
//
//	-shards N       concurrent localization sessions (0 = GOMAXPROCS)
//	-deadline D     default per-subject wall-clock bound, Go duration
//	                syntax; a subject's own "deadline" overrides it
//	-fail-fast      cancel remaining subjects after the first failure
//	-workers N      verification workers per session (0 = GOMAXPROCS)
//	-cache N        shared switched-run cache size (negative = off)
//	-private-cache  per-subject caches instead of one shared cache
//	-timing         include wall-clock / shard / cache fields, which
//	                vary run to run (default output is deterministic)
//	-o FILE         write the JSON result there instead of stdout
//	-trace FILE     write the deterministic JSONL corpus journal
//	-progress       print live progress to stderr
//
// The default JSON output and the -trace journal carry only
// scheduling-independent fields and are byte-identical for any -shards
// value (see docs/CORPUS.md). Exit status: 0 when every subject
// completed, 1 when any subject failed (deadline, budget, compile
// error, root cause not located), 2 for command-line misuse.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"eol/internal/cliutil"
	"eol/internal/corpus"
)

// subjectJSON is one result row. Fields after "ips_dynamic" appear only
// under -timing: they depend on scheduling and would break the
// determinism contract of the default output.
type subjectJSON struct {
	Name    string `json:"name"`
	Located bool   `json:"located"`
	Class   string `json:"class,omitempty"`

	UserPrunings  int `json:"user_prunings"`
	Verifications int `json:"verifications"`
	Iterations    int `json:"iterations"`
	ExpandedEdges int `json:"expanded_edges"`
	StrongEdges   int `json:"strong_edges"`
	ImplicitEdges int `json:"implicit_edges"`
	IPSStatic     int `json:"ips_static"`
	IPSDynamic    int `json:"ips_dynamic"`

	// The verification-avoidance split: candidates retired before any
	// execution by the SPDG reach filter vs. by trace replay. Both are
	// decided in the engine's sequential planning loop, so they are
	// scheduling-independent and safe for the deterministic output.
	StaticReachSkips int64 `json:"static_reach_skips"`
	ReplaySkips      int64 `json:"replay_skips"`

	Error     string  `json:"error,omitempty"`
	ElapsedMS float64 `json:"elapsed_ms,omitempty"`
	Shard     *int    `json:"shard,omitempty"`
}

type cacheJSON struct {
	Hits      int64   `json:"hits"`
	Misses    int64   `json:"misses"`
	Evictions int64   `json:"evictions"`
	HitRate   float64 `json:"hit_rate"`
}

type resultJSON struct {
	Subjects []subjectJSON `json:"subjects"`
	Total    int           `json:"total"`
	Located  int           `json:"located"`
	Failed   int           `json:"failed"`

	ElapsedMS float64    `json:"elapsed_ms,omitempty"`
	Shards    int        `json:"shards,omitempty"`
	Cache     *cacheJSON `json:"cache,omitempty"`
}

func main() {
	shardsFlag := flag.Int("shards", 0, "concurrent localization sessions (0 = GOMAXPROCS)")
	deadlineFlag := flag.Duration("deadline", 0, "default per-subject wall-clock bound (e.g. 30s; 0 = none)")
	failFastFlag := flag.Bool("fail-fast", false, "cancel remaining subjects after the first failure")
	privateFlag := flag.Bool("private-cache", false, "per-subject switched-run caches instead of one shared cache")
	timingFlag := flag.Bool("timing", false, "include scheduling-dependent fields (timings, shards, cache counters)")
	outFlag := flag.String("o", "", "write the JSON result to this `file` instead of stdout")
	engFlags := cliutil.RegisterEngineFlags(flag.CommandLine)
	obsFlags := cliutil.RegisterObsFlags(flag.CommandLine)
	flag.Parse()

	if flag.NArg() != 1 {
		cliutil.Usagef("usage: eolcorpus [flags] manifest.json (see -h)")
	}

	m, err := corpus.Load(flag.Arg(0))
	if err != nil {
		cliutil.Fatalf("eolcorpus: %v", err)
	}

	observer, closeObs, err := obsFlags.Observer()
	if err != nil {
		cliutil.Fatalf("eolcorpus: %v", err)
	}

	res, err := corpus.Run(context.Background(), m, corpus.Options{
		Shards:        *shardsFlag,
		Deadline:      *deadlineFlag,
		FailFast:      *failFastFlag,
		VerifyWorkers: engFlags.Workers,
		CacheSize:     engFlags.Cache,
		NoSharedCache: *privateFlag,
		Checkpoints:   engFlags.Checkpoints,
		NoStaticReach: engFlags.NoStaticReach,
		Observer:      observer,
	})
	if cerr := closeObs(); cerr != nil {
		cliutil.Fatalf("eolcorpus: closing -trace journal: %v", cerr)
	}
	if err != nil {
		cliutil.Fatalf("eolcorpus: %v", err)
	}

	out := resultJSON{
		Subjects: make([]subjectJSON, len(res.Subjects)),
		Total:    len(res.Subjects),
		Located:  res.Located,
		Failed:   res.Failed,
	}
	for i := range res.Subjects {
		sr := &res.Subjects[i]
		row := subjectJSON{
			Name:    sr.Name,
			Located: sr.Located(),
			Class:   sr.Class,
		}
		if rep := sr.Report; rep != nil {
			row.UserPrunings = rep.Stats.UserPrunings
			row.Verifications = rep.Stats.Verifications
			row.Iterations = rep.Stats.Iterations
			row.ExpandedEdges = rep.Stats.ExpandedEdges
			row.StrongEdges = rep.Stats.StrongEdges
			row.ImplicitEdges = rep.Stats.ImplicitEdges
			row.IPSStatic = rep.IPS.Static
			row.IPSDynamic = rep.IPS.Dynamic
			row.StaticReachSkips = rep.Stats.StaticReachSkips
			row.ReplaySkips = rep.Stats.StaticSkips
		}
		if *timingFlag {
			if sr.Err != nil {
				row.Error = sr.Err.Error()
			}
			row.ElapsedMS = float64(sr.Elapsed) / float64(time.Millisecond)
			shard := sr.Shard
			row.Shard = &shard
		}
		out.Subjects[i] = row
	}
	if *timingFlag {
		out.ElapsedMS = float64(res.Elapsed) / float64(time.Millisecond)
		out.Shards = *shardsFlag
		if res.SharedCache {
			c := res.Cache
			rate := 0.0
			if c.Hits+c.Misses > 0 {
				rate = float64(c.Hits) / float64(c.Hits+c.Misses)
			}
			out.Cache = &cacheJSON{Hits: c.Hits, Misses: c.Misses, Evictions: c.Evictions, HitRate: rate}
		}
	}

	enc, err := json.MarshalIndent(&out, "", "  ")
	if err != nil {
		cliutil.Fatalf("eolcorpus: %v", err)
	}
	enc = append(enc, '\n')
	if *outFlag != "" {
		if err := os.WriteFile(*outFlag, enc, 0o644); err != nil {
			cliutil.Fatalf("eolcorpus: %v", err)
		}
	} else {
		os.Stdout.Write(enc)
	}

	if res.Failed > 0 {
		fmt.Fprintf(os.Stderr, "eolcorpus: %d of %d subjects failed\n", res.Failed, out.Total)
		os.Exit(1)
	}
}
