// Command eolserve is the resident localization server: the corpus
// driver behind HTTP/JSON, holding warm state (compile cache,
// switched-run cache, static dependence cache) across requests, with
// per-tenant token-bucket rate limiting and bounded-queue admission
// control. See docs/SERVER.md for the API and docs/CORPUS.md for the
// manifest format.
//
// Usage:
//
//	eolserve [flags]
//
//	-addr HOST:PORT   listen address (default 127.0.0.1:8080; use :0
//	                  for an ephemeral port)
//	-addr-file FILE   write the bound address there, for scripts using
//	                  -addr with port 0
//	-sessions N       concurrent localization requests (0 = GOMAXPROCS)
//	-queue N          requests allowed to wait for a session
//	                  (0 = 2×sessions); beyond it the server sheds
//	                  load with 429
//	-rate R           per-tenant sustained requests/second (0 = unlimited)
//	-burst N          per-tenant burst size (0 = max(1, rate))
//	-max-jobs N       live async jobs (0 = 64)
//	-max-deadline D   cap every subject's deadline (0 = uncapped)
//	-shards N         corpus shards per request (0 = GOMAXPROCS)
//	-workers N        verification workers per session (0 = GOMAXPROCS)
//	-cache N          switched-run cache size (negative = off)
//
// Responses for a given manifest are byte-identical to `eolcorpus -o`
// output for the same subjects, whatever the flags above. The server
// shuts down gracefully on SIGINT/SIGTERM, draining in-flight
// requests. Exit status: 0 on clean shutdown, 1 on serve errors, 2 for
// command-line misuse.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"eol/internal/cliutil"
	"eol/internal/corpus"
	"eol/internal/serve"
)

func main() {
	addrFlag := flag.String("addr", "127.0.0.1:8080", "listen `address` (use :0 for an ephemeral port)")
	addrFileFlag := flag.String("addr-file", "", "write the bound listen address to this `file`")
	sessionsFlag := flag.Int("sessions", 0, "concurrent localization requests (0 = GOMAXPROCS)")
	queueFlag := flag.Int("queue", 0, "requests allowed to wait for a session (0 = 2×sessions)")
	rateFlag := flag.Float64("rate", 0, "per-tenant sustained requests/second (0 = unlimited)")
	burstFlag := flag.Int("burst", 0, "per-tenant burst size (0 = max(1, rate))")
	maxJobsFlag := flag.Int("max-jobs", 0, "live async jobs (0 = 64)")
	maxDeadlineFlag := flag.Duration("max-deadline", 0, "cap every subject's deadline (0 = uncapped)")
	shardsFlag := flag.Int("shards", 0, "corpus shards per request (0 = GOMAXPROCS)")
	engFlags := cliutil.RegisterEngineFlags(flag.CommandLine)
	flag.Parse()

	if flag.NArg() != 0 {
		cliutil.Usagef("usage: eolserve [flags] (see -h)")
	}

	srv := serve.New(serve.Config{
		Corpus: corpus.Options{
			Shards:        *shardsFlag,
			VerifyWorkers: engFlags.Workers,
			CacheSize:     engFlags.Cache,
			Checkpoints:   engFlags.Checkpoints,
			Features:      engFlags.Features(),
			Backend:       engFlags.Backend,
		},
		MaxDeadline: *maxDeadlineFlag,
		Sessions:    *sessionsFlag,
		Queue:       *queueFlag,
		Rate:        *rateFlag,
		Burst:       *burstFlag,
		MaxJobs:     *maxJobsFlag,
	})
	defer srv.Close()

	ln, err := net.Listen("tcp", *addrFlag)
	if err != nil {
		cliutil.Fatalf("eolserve: %v", err)
	}
	if *addrFileFlag != "" {
		if err := os.WriteFile(*addrFileFlag, []byte(ln.Addr().String()+"\n"), 0o644); err != nil {
			cliutil.Fatalf("eolserve: %v", err)
		}
	}
	fmt.Fprintf(os.Stderr, "eolserve: listening on %s (%s)\n", ln.Addr(), srv)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	hs := &http.Server{Handler: srv}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	select {
	case err := <-errc:
		cliutil.Fatalf("eolserve: %v", err)
	case <-ctx.Done():
	}
	stop() // a second signal kills immediately
	fmt.Fprintln(os.Stderr, "eolserve: shutting down")
	sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		hs.Close()
		cliutil.Fatalf("eolserve: shutdown: %v", err)
	}
}
