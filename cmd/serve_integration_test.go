package cmd_test

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// buildServeTools builds eolserve and eoloadgen (not in the base tool
// list) into binDir.
func buildServeTools(t *testing.T) {
	t.Helper()
	bin(t, "eolcorpus") // ensure binDir and repoRoot exist
	for _, tool := range []string{"eolserve", "eoloadgen"} {
		cmd := exec.Command("go", "build", "-o", filepath.Join(binDir, tool), "./cmd/"+tool)
		cmd.Dir = repoRoot
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", tool, err, out)
		}
	}
}

// TestServeRoundTrip boots eolserve on an ephemeral port and drives it
// with eoloadgen: health probe, corpus request byte-identical to
// eolcorpus batch output, async job with a validated event stream, and
// a clean SIGINT shutdown.
func TestServeRoundTrip(t *testing.T) {
	buildServeTools(t)
	dir := t.TempDir()
	addrFile := filepath.Join(dir, "addr")

	var serverLog bytes.Buffer
	srv := exec.Command(filepath.Join(binDir, "eolserve"), "-addr", "127.0.0.1:0", "-addr-file", addrFile)
	srv.Dir = repoRoot
	srv.Stderr = &serverLog
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer srv.Process.Kill()

	var addr string
	for i := 0; i < 200 && addr == ""; i++ {
		if b, err := os.ReadFile(addrFile); err == nil && len(b) > 0 {
			addr = strings.TrimSpace(string(b))
			break
		}
		time.Sleep(25 * time.Millisecond)
	}
	if addr == "" {
		t.Fatalf("server never published its address:\n%s", serverLog.String())
	}
	base := "http://" + addr

	if out, err := runTool(t, "eoloadgen", "-base", base, "-healthz"); err != nil {
		t.Fatalf("healthz: %v\n%s", err, out)
	}

	// The server's corpus response must be byte-identical to batch
	// output for the same manifest.
	serveOut := filepath.Join(dir, "serve.json")
	if out, err := runTool(t, "eoloadgen", "-base", base,
		"-corpus", "testdata/corpus/smoke.json", "-o", serveOut); err != nil {
		t.Fatalf("corpus: %v\n%s", err, out)
	}
	batchOut := filepath.Join(dir, "batch.json")
	if out, code := runExit(t, "eolcorpus", "-o", batchOut, "testdata/corpus/smoke.json"); code != 1 {
		t.Fatalf("eolcorpus exit %d, want 1 (deadline subject fails)\n%s", code, out)
	}
	sb, err := os.ReadFile(serveOut)
	if err != nil {
		t.Fatal(err)
	}
	bb, err := os.ReadFile(batchOut)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sb, bb) {
		t.Errorf("server response differs from batch output:\n--- serve:\n%s\n--- batch:\n%s", sb, bb)
	}

	// Async job: the event stream must be a valid journal (seq-contiguous,
	// balanced spans) and the job must finish with a report.
	events := filepath.Join(dir, "events.jsonl")
	if out, err := runTool(t, "eoloadgen", "-base", base, "-tenant", "jobs",
		"-corpus", "testdata/corpus/smoke.json", "-async", "-events", events,
		"-o", filepath.Join(dir, "job.json")); err != nil {
		t.Fatalf("async: %v\n%s", err, out)
	}
	if fi, err := os.Stat(events); err != nil || fi.Size() == 0 {
		t.Errorf("event stream missing or empty: %v", err)
	}

	// SIGINT drains and exits 0.
	if err := srv.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("unclean shutdown: %v\n%s", err, serverLog.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatal("shutdown timed out")
	}
}
