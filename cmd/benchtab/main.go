// Command benchtab regenerates the paper's evaluation tables and this
// reproduction's ablations over the built-in benchmark suite (MiniC
// analogs of flex, grep, gzip, sed with nine seeded execution-omission
// faults).
//
// Usage:
//
//	benchtab -table 1          benchmark characteristics (Table 1)
//	benchtab -table 2          RS / DS / PS slice sizes   (Table 2)
//	benchtab -table 3          locator effectiveness      (Table 3)
//	benchtab -table 4          performance                (Table 4)
//	benchtab -table verify     verification engine: sequential vs
//	                           parallel vs cached scheduling
//	benchtab -table all        all of the above
//	benchtab -ablation A|B|C|D ablation experiments (see DESIGN.md)
//	benchtab -reps N           timing repetitions for tables 4/verify
//	benchtab -cases            list the benchmark error cases
package main

import (
	"flag"
	"fmt"

	"eol/internal/bench"
	"eol/internal/cliutil"
	"eol/internal/harness"
)

func main() {
	tableFlag := flag.String("table", "", "table to regenerate: 1, 2, 3, 4, verify or all")
	ablFlag := flag.String("ablation", "", "ablation to run: A, B, C or D")
	repsFlag := flag.Int("reps", 20, "timing repetitions for tables 4 and verify")
	casesFlag := flag.Bool("cases", false, "list benchmark error cases")
	flag.Parse()

	switch {
	case *casesFlag:
		for _, c := range bench.Cases() {
			fmt.Printf("%-16s %s\n", c.Name(), c.Description)
		}
	case *ablFlag != "":
		out, err := harness.RenderAblation(*ablFlag)
		if err != nil {
			cliutil.Fatalf("benchtab: %v", err)
		}
		fmt.Print(out)
	case *tableFlag == "all":
		for _, t := range []string{"1", "2", "3", "4", "verify"} {
			out, err := harness.Render(t, *repsFlag)
			if err != nil {
				cliutil.Fatalf("benchtab: %v", err)
			}
			fmt.Println(out)
		}
	case *tableFlag != "":
		out, err := harness.Render(*tableFlag, *repsFlag)
		if err != nil {
			cliutil.Fatalf("benchtab: %v", err)
		}
		fmt.Print(out)
	default:
		cliutil.Usagef("usage: benchtab -table 1|2|3|4|all | -ablation A|B|C|D | -cases")
	}
}
