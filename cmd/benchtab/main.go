// Command benchtab regenerates the paper's evaluation tables and this
// reproduction's ablations over the built-in benchmark suite (MiniC
// analogs of flex, grep, gzip, sed with nine seeded execution-omission
// faults).
//
// Usage:
//
//	benchtab -table 1          benchmark characteristics (Table 1)
//	benchtab -table 2          RS / DS / PS slice sizes   (Table 2)
//	benchtab -table 3          locator effectiveness      (Table 3)
//	benchtab -table 4          performance                (Table 4)
//	benchtab -table verify     verification engine: sequential vs
//	                           parallel vs cached scheduling
//	benchtab -table all        all of the above
//	benchtab -ablation A|B|C|D ablation experiments (see DESIGN.md)
//	benchtab -reps N           timing repetitions for tables 4/verify
//	benchtab -cases            list the benchmark error cases
//	benchtab -workers N        worker-pool size for -table verify
//	benchtab -cache N          cached-mode cache size for -table verify
//	benchtab -deadline D       wall-clock bound for the whole run ("2m");
//	                           on expiry benchtab exits 1 with [deadline]
//	benchtab -trace FILE       JSONL journal of the observed localizations
//	benchtab -progress         live phase progress on stderr
package main

import (
	"flag"
	"fmt"

	"eol/internal/bench"
	"eol/internal/cliutil"
	"eol/internal/harness"
)

func main() {
	tableFlag := flag.String("table", "", "table to regenerate: 1, 2, 3, 4, verify or all")
	ablFlag := flag.String("ablation", "", "ablation to run: A, B, C or D")
	repsFlag := flag.Int("reps", 20, "timing repetitions for tables 4 and verify")
	casesFlag := flag.Bool("cases", false, "list benchmark error cases")
	deadlineFlag := cliutil.RegisterDeadlineFlag(flag.CommandLine)
	engFlags := cliutil.RegisterEngineFlags(flag.CommandLine)
	obsFlags := cliutil.RegisterObsFlags(flag.CommandLine)
	flag.Parse()

	observer, closeObs, err := obsFlags.Observer()
	if err != nil {
		cliutil.Fatalf("benchtab: %v", err)
	}
	ctx, cancel := deadlineFlag.Context()
	defer cancel()
	opt := harness.Options{
		Reps:        *repsFlag,
		Workers:     engFlags.Workers,
		Cache:       engFlags.Cache,
		Checkpoints: engFlags.Checkpoints,
		Backend:     engFlags.Backend,
		Observer:    observer,
		Ctx:         ctx,
	}

	switch {
	case *casesFlag:
		for _, c := range bench.Cases() {
			fmt.Printf("%-16s %s\n", c.Name(), c.Description)
		}
	case *ablFlag != "":
		out, err := harness.RenderAblation(ctx, *ablFlag)
		if err != nil {
			cliutil.ExitErr("benchtab", err)
		}
		fmt.Print(out)
	case *tableFlag == "all":
		for _, t := range []string{"1", "2", "3", "4", "verify"} {
			out, err := harness.Render(t, opt)
			if err != nil {
				cliutil.ExitErr("benchtab", err)
			}
			fmt.Println(out)
		}
	case *tableFlag != "":
		out, err := harness.Render(*tableFlag, opt)
		if err != nil {
			cliutil.ExitErr("benchtab", err)
		}
		fmt.Print(out)
	default:
		cliutil.Usagef("usage: benchtab -table 1|2|3|4|all | -ablation A|B|C|D | -cases")
	}
	if cerr := closeObs(); cerr != nil {
		cliutil.Fatalf("benchtab: closing -trace journal: %v", cerr)
	}
}
