// Command eoloadgen is the eolserve client and load generator. It
// drives a running server in one of four modes, selected by flags:
//
//	eoloadgen -base URL -healthz
//	    probe GET /v1/healthz; exit 0 iff the server reports ok.
//
//	eoloadgen -base URL -statsz
//	    fetch GET /v1/statsz and print it.
//
//	eoloadgen -base URL -corpus manifest.json [-o FILE]
//	    POST the manifest to /v1/corpus (file references are resolved
//	    locally and sources inlined) and write the response JSON —
//	    byte-identical to `eolcorpus -o` for the same subjects. With
//	    -async the manifest is submitted as a job, the event stream is
//	    written to -events FILE (NDJSON, journalcheck-compatible), and
//	    the final job report is the output.
//
//	eoloadgen -base URL -subject manifest.json [-index N] -n N -rate R
//	    open-loop load run against POST /v1/locate: fire subject N of
//	    the manifest -n times at fixed arrival rate R per second
//	    (0 = closed loop), then print latency quantiles. Requests are
//	    fired on the schedule regardless of completions, so server
//	    queueing shows up as latency instead of being silently absorbed
//	    (coordinated omission). -min-rejected asserts a lower bound on
//	    429 responses (for smoke-testing admission control).
//
// Exit status: 0 on success, 1 when the probe/request/assertion fails,
// 2 for command-line misuse.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"

	"eol/internal/api"
	"eol/internal/cliutil"
	"eol/internal/corpus"
	"eol/internal/serve"
)

func main() {
	baseFlag := flag.String("base", "", "server base `URL`, e.g. http://127.0.0.1:8080")
	tenantFlag := flag.String("tenant", "", "X-Tenant header value")
	healthzFlag := flag.Bool("healthz", false, "probe /v1/healthz and exit")
	statszFlag := flag.Bool("statsz", false, "fetch /v1/statsz and exit")
	corpusFlag := flag.String("corpus", "", "POST this manifest `file` to /v1/corpus")
	asyncFlag := flag.Bool("async", false, "submit -corpus as an async job")
	eventsFlag := flag.String("events", "", "with -async: write the NDJSON event stream to this `file`")
	subjectFlag := flag.String("subject", "", "load mode: manifest `file` supplying the locate subject")
	indexFlag := flag.Int("index", 0, "load mode: subject index within -subject")
	nFlag := flag.Int("n", 100, "load mode: total requests")
	rateFlag := flag.Float64("rate", 0, "load mode: arrival rate per second (0 = closed loop)")
	minRejectedFlag := flag.Int("min-rejected", 0, "load mode: fail unless at least N requests got 429")
	outFlag := flag.String("o", "", "write the JSON result to this `file` instead of stdout")
	flag.Parse()

	if *baseFlag == "" || flag.NArg() != 0 {
		cliutil.Usagef("usage: eoloadgen -base URL (-healthz | -statsz | -corpus FILE | -subject FILE) [flags] (see -h)")
	}

	switch {
	case *healthzFlag:
		runHealthz(*baseFlag)
	case *statszFlag:
		runGet(*baseFlag+"/v1/statsz", *tenantFlag, *outFlag)
	case *corpusFlag != "":
		if *asyncFlag {
			runAsync(*baseFlag, *tenantFlag, *corpusFlag, *eventsFlag, *outFlag)
		} else {
			runCorpus(*baseFlag, *tenantFlag, *corpusFlag, *outFlag)
		}
	case *subjectFlag != "":
		runLoad(*baseFlag, *tenantFlag, *subjectFlag, *indexFlag, *nFlag, *rateFlag, *minRejectedFlag, *outFlag)
	default:
		cliutil.Usagef("eoloadgen: pick a mode: -healthz, -statsz, -corpus or -subject (see -h)")
	}
}

// emit writes b to path ("" = stdout).
func emit(path string, b []byte) {
	if path == "" {
		os.Stdout.Write(b)
		return
	}
	if err := os.WriteFile(path, b, 0o644); err != nil {
		cliutil.Fatalf("eoloadgen: %v", err)
	}
}

// do performs one request and returns status and body; transport errors
// are fatal.
func do(method, url, tenant string, body []byte) (int, []byte) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		cliutil.Fatalf("eoloadgen: %v", err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if tenant != "" {
		req.Header.Set("X-Tenant", tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		cliutil.Fatalf("eoloadgen: %v", err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		cliutil.Fatalf("eoloadgen: %v", err)
	}
	return resp.StatusCode, b
}

func runHealthz(base string) {
	code, b := do(http.MethodGet, base+"/v1/healthz", "", nil)
	if code != http.StatusOK {
		cliutil.Fatalf("eoloadgen: healthz: status %d: %s", code, b)
	}
	fmt.Println("ok")
}

func runGet(url, tenant, out string) {
	code, b := do(http.MethodGet, url, tenant, nil)
	if code != http.StatusOK {
		cliutil.Fatalf("eoloadgen: status %d: %s", code, b)
	}
	emit(out, b)
}

// wireManifest loads a manifest file and converts it to the wire form
// (sources inlined, file references cleared).
func wireManifest(path string) []byte {
	m, err := corpus.Load(path)
	if err != nil {
		cliutil.Fatalf("eoloadgen: %v", err)
	}
	var buf bytes.Buffer
	if err := api.Encode(&buf, api.RequestFromManifest(m)); err != nil {
		cliutil.Fatalf("eoloadgen: %v", err)
	}
	return buf.Bytes()
}

func runCorpus(base, tenant, manifest, out string) {
	code, b := do(http.MethodPost, base+"/v1/corpus", tenant, wireManifest(manifest))
	if code != http.StatusOK {
		cliutil.Fatalf("eoloadgen: corpus: status %d: %s", code, b)
	}
	emit(out, b)
}

func runAsync(base, tenant, manifest, events, out string) {
	code, b := do(http.MethodPost, base+"/v1/corpus?async=1", tenant, wireManifest(manifest))
	if code != http.StatusAccepted {
		cliutil.Fatalf("eoloadgen: async submit: status %d: %s", code, b)
	}
	var js api.JobStatus
	if err := json.Unmarshal(b, &js); err != nil {
		cliutil.Fatalf("eoloadgen: async submit: %v", err)
	}
	fmt.Fprintf(os.Stderr, "eoloadgen: job %s accepted\n", js.ID)

	// The event stream follows the job to completion; copying it to the
	// -events file doubles as the wait.
	code, stream := do(http.MethodGet, base+"/v1/jobs/"+js.ID+"/events", tenant, nil)
	if code != http.StatusOK {
		cliutil.Fatalf("eoloadgen: events: status %d: %s", code, stream)
	}
	if events != "" {
		emit(events, stream)
	}

	code, b = do(http.MethodGet, base+"/v1/jobs/"+js.ID, tenant, nil)
	if code != http.StatusOK {
		cliutil.Fatalf("eoloadgen: job status: status %d: %s", code, b)
	}
	if err := json.Unmarshal(b, &js); err != nil {
		cliutil.Fatalf("eoloadgen: job status: %v", err)
	}
	if js.State != api.JobDone || js.Error != nil {
		cliutil.Fatalf("eoloadgen: job %s: state %s, error %v", js.ID, js.State, js.Error)
	}
	var buf bytes.Buffer
	if err := api.Encode(&buf, js.Report); err != nil {
		cliutil.Fatalf("eoloadgen: %v", err)
	}
	emit(out, buf.Bytes())
}

func runLoad(base, tenant, manifest string, index, n int, rate float64, minRejected int, out string) {
	m, err := corpus.Load(manifest)
	if err != nil {
		cliutil.Fatalf("eoloadgen: %v", err)
	}
	if index < 0 || index >= len(m.Subjects) {
		cliutil.Fatalf("eoloadgen: -index %d out of range (%d subjects)", index, len(m.Subjects))
	}
	req := &api.LocateRequest{SchemaVersion: api.SchemaVersion, Subject: m.Subjects[index]}
	req.File, req.CorrectFile = "", ""
	var body bytes.Buffer
	if err := api.Encode(&body, req); err != nil {
		cliutil.Fatalf("eoloadgen: %v", err)
	}

	rep, err := serve.RunLoad(context.Background(), serve.LoadOptions{
		BaseURL:  base,
		Tenant:   tenant,
		Requests: n,
		Rate:     rate,
	}, body.Bytes())
	if err != nil {
		cliutil.Fatalf("eoloadgen: %v", err)
	}
	fmt.Fprintf(os.Stderr, "eoloadgen: %s\n", rep.Summary())
	var buf bytes.Buffer
	if err := api.Encode(&buf, rep); err != nil {
		cliutil.Fatalf("eoloadgen: %v", err)
	}
	emit(out, buf.Bytes())
	if rep.Rejected < minRejected {
		cliutil.Fatalf("eoloadgen: %d rejected responses, want >= %d", rep.Rejected, minRejected)
	}
}
