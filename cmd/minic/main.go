// Command minic runs a MiniC program: the execution substrate of the
// execution-omission-error reproduction.
//
// Usage:
//
//	minic [flags] program.mc
//
//	-input "1,2,3"   integer input stream
//	-text "abc"      input as the bytes of a string
//	-list            print the numbered statement listing and exit
//	-vet             run the static checker suite and exit (exit 1 if
//	                 any diagnostic fires; see eolvet for the full CLI)
//	-trace           print the execution trace (instances, parents, deps)
//	-switch S:K      invert the K-th instance of predicate statement S
//	-perturb S:K:V   override the value defined by the K-th instance of
//	                 statement S with V
//	-savetrace FILE  write the execution trace (gob) for offline analysis
//	-cfgdot FUNC     print FUNC's control-flow graph as Graphviz DOT
//	                 (with control-dependence annotations) and exit
//	-budget N        step budget (default 10,000,000)
//
// Examples:
//
//	minic -text 'if x for y' testdata/flexsim.mc
//	minic -input '1,0,97,97,98' -switch 8:1 testdata/gzipsim.mc
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"eol/internal/check"
	"eol/internal/cliutil"
	"eol/internal/interp"
	"eol/internal/lang/ast"
	"eol/internal/trace"
)

func main() {
	inputFlag := flag.String("input", "", "comma-separated integer input")
	textFlag := flag.String("text", "", "input as the bytes of a string")
	listFlag := flag.Bool("list", false, "print numbered statement listing and exit")
	vetFlag := flag.Bool("vet", false, "run the static checker suite and exit")
	traceFlag := flag.Bool("trace", false, "print the execution trace")
	switchFlag := flag.String("switch", "", "invert predicate instance S:K")
	perturbFlag := flag.String("perturb", "", "override defined value S:K:V")
	saveFlag := flag.String("savetrace", "", "write the trace (gob) to this file")
	cfgFlag := flag.String("cfgdot", "", "print this function's CFG as DOT and exit")
	budgetFlag := flag.Int("budget", 0, "step budget")
	flag.Parse()

	if flag.NArg() != 1 {
		cliutil.Usagef("usage: minic [flags] program.mc (see -h)")
	}
	src, err := cliutil.LoadSource(flag.Arg(0))
	if err != nil {
		cliutil.Fatalf("minic: %v", err)
	}
	c, err := interp.Compile(src)
	if err != nil {
		cliutil.Fatalf("minic: %v", err)
	}

	if *listFlag {
		for _, s := range c.Info.Stmts {
			fmt.Printf("S%-4d %s\n", s.ID(), ast.StmtString(s))
		}
		return
	}
	if *vetFlag {
		diags := check.Vet(check.NewUnit(c, nil))
		for _, d := range diags {
			fmt.Println(d)
		}
		if len(diags) > 0 {
			os.Exit(1)
		}
		return
	}
	if *cfgFlag != "" {
		g, ok := c.CFG.Funcs[*cfgFlag]
		if !ok {
			cliutil.Usagef("minic: no function %q", *cfgFlag)
		}
		if err := g.WriteDOT(os.Stdout, true); err != nil {
			cliutil.Fatalf("minic: %v", err)
		}
		return
	}

	input, err := cliutil.Input(*inputFlag, *textFlag)
	if err != nil {
		cliutil.Usagef("minic: %v", err)
	}

	opts := interp.Options{
		Input:      input,
		BuildTrace: *traceFlag,
		StepBudget: *budgetFlag,
	}
	if *switchFlag != "" {
		var s, k int
		if _, err := fmt.Sscanf(*switchFlag, "%d:%d", &s, &k); err != nil {
			cliutil.Usagef("minic: bad -switch %q (want S:K)", *switchFlag)
		}
		opts.Switch = &interp.SwitchPlan{Stmt: s, Occ: k}
		opts.BuildTrace = true
	}
	if *perturbFlag != "" {
		var s, k int
		var v int64
		if _, err := fmt.Sscanf(*perturbFlag, "%d:%d:%d", &s, &k, &v); err != nil {
			cliutil.Usagef("minic: bad -perturb %q (want S:K:V)", *perturbFlag)
		}
		opts.Perturb = &interp.PerturbPlan{Stmt: s, Occ: k, Value: v}
		opts.BuildTrace = true
	}
	if *saveFlag != "" {
		opts.BuildTrace = true
	}

	r := interp.Run(c, opts)
	fmt.Print(r.Rendered)
	if opts.Switch != nil && !r.SwitchApplied {
		fmt.Printf("(switch %v never reached)\n", opts.Switch)
	}
	if opts.Perturb != nil && !r.PerturbApplied {
		fmt.Printf("(perturbation %v never reached)\n", opts.Perturb)
	}
	if *saveFlag != "" && r.Trace != nil {
		f, err := os.Create(*saveFlag)
		if err != nil {
			cliutil.Fatalf("minic: %v", err)
		}
		err = r.Trace.Encode(f)
		cerr := f.Close()
		if err != nil || cerr != nil {
			cliutil.Fatalf("minic: saving trace: %v %v", err, cerr)
		}
		fmt.Printf("trace saved to %s (%d entries)\n", *saveFlag, r.Trace.Len())
	}
	if *traceFlag && r.Trace != nil {
		fmt.Printf("--- trace: %d entries, %d outputs ---\n", r.Trace.Len(), len(r.Trace.Outputs))
		for i := 0; i < r.Trace.Len(); i++ {
			e := r.Trace.At(i)
			var deps []string
			for _, u := range e.Uses {
				if u.Def != trace.NoDef {
					deps = append(deps, fmt.Sprintf("dd:%d", u.Def))
				}
			}
			if e.Parent >= 0 {
				deps = append(deps, fmt.Sprintf("cd:%d", e.Parent))
			}
			mark := ""
			if e.Switched {
				mark = " [switched]"
			}
			branch := ""
			if e.Branch != 0 {
				branch = " " + e.Branch.String()
			}
			fmt.Printf("%5d %-9v%s val=%-6d %s%s\n",
				i, e.Inst, branch, e.Value, strings.Join(deps, " "), mark)
		}
	}
	if r.Err != nil {
		cliutil.Fatalf("minic: runtime error: %v", r.Err)
	}
}
