// Command eolshell is the interactive localization session the paper's
// PruneSlicing procedure describes: "the system presents the statement
// instances in the slice in an order and the programmer gives feedback to
// the system if he considers the presented statement instance contains
// benign program state."
//
// Usage:
//
//	eolshell -input "1" [-expected "8,8"] [-correct correct.mc] faulty.mc
//
// The expected output comes either from -expected or from running a
// correct version. The session then loops:
//
//	[k] S12#1  C=0.000  outbuf[outcnt] = flags;
//	benign state at S12#1? [y]es / [n]o / [e]xpand / [l]ist / [q]uit
//
//	y  - pin the instance at confidence 1 and re-rank
//	n  - keep it as a fault candidate, present the next
//	e  - verify the potential dependences of the top corrupted candidate
//	     by predicate switching and add the verified implicit edges
//	l  - print the current ranked candidate list
//	q  - quit, printing the final fault candidate set
//
// The [e]xpand verifications go through the verification engine, so the
// unified -workers / -cache flags size its pool and switched-run cache,
// and -trace / -progress observe the session like any eoloc run. The
// -backend flag selects the execution engine (vm or tree, docs/VM.md),
// and -disasm prints the faulty program's compiled bytecode with
// source-statement annotations instead of starting a session.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"eol/internal/backend"
	"eol/internal/cliutil"
	"eol/internal/confidence"
	"eol/internal/ddg"
	"eol/internal/implicit"
	"eol/internal/interp"
	"eol/internal/lang/ast"
	"eol/internal/obs"
	"eol/internal/slicing"
	"eol/internal/trace"
	"eol/internal/verifyengine"
	"eol/internal/vm"
)

func main() {
	inputFlag := flag.String("input", "", "comma-separated integer input")
	textFlag := flag.String("text", "", "input as the bytes of a string")
	correctFlag := flag.String("correct", "", "path to the correct program version")
	expectedFlag := flag.String("expected", "", "expected output values (overrides -correct)")
	disasmFlag := flag.Bool("disasm", false, "print the compiled bytecode listing and exit")
	engFlags := cliutil.RegisterEngineFlags(flag.CommandLine)
	obsFlags := cliutil.RegisterObsFlags(flag.CommandLine)
	flag.Parse()

	if flag.NArg() != 1 {
		cliutil.Usagef("usage: eolshell [-correct correct.mc | -expected \"8,8\"] -input ... faulty.mc")
	}
	src, err := cliutil.LoadSource(flag.Arg(0))
	if err != nil {
		cliutil.Fatalf("eolshell: %v", err)
	}
	faulty, err := interp.Compile(src)
	if err != nil {
		cliutil.Fatalf("eolshell: %v", err)
	}

	if *disasmFlag {
		fmt.Print(vm.Disassemble(faulty))
		return
	}

	input, err := cliutil.Input(*inputFlag, *textFlag)
	if err != nil {
		cliutil.Usagef("eolshell: %v", err)
	}

	bk, err := backend.Lookup(engFlags.Backend)
	if err != nil {
		cliutil.Usagef("eolshell: %v", err)
	}

	var expected []int64
	switch {
	case *expectedFlag != "":
		expected, err = cliutil.ParseInts(*expectedFlag)
		if err != nil {
			cliutil.Usagef("eolshell: -expected: %v", err)
		}
	case *correctFlag != "":
		csrc, err := cliutil.LoadSource(*correctFlag)
		if err != nil {
			cliutil.Fatalf("eolshell: %v", err)
		}
		correct, err := interp.Compile(csrc)
		if err != nil {
			cliutil.Fatalf("eolshell: %v", err)
		}
		r := bk.Run(correct, interp.Options{Input: input})
		if r.Err != nil {
			cliutil.Fatalf("eolshell: correct run: %v", r.Err)
		}
		expected = r.OutputValues()
	default:
		cliutil.Usagef("eolshell: need -correct or -expected")
	}

	observer, closeObs, err := obsFlags.Observer()
	if err != nil {
		cliutil.Fatalf("eolshell: %v", err)
	}
	sh, err := newShell(faulty, bk, input, expected, *engFlags, obs.NewRecorder(observer))
	if err != nil {
		cliutil.Fatalf("eolshell: %v", err)
	}
	sh.loop(bufio.NewScanner(os.Stdin))
	if cerr := closeObs(); cerr != nil {
		cliutil.Fatalf("eolshell: closing -trace journal: %v", cerr)
	}
}

// shell drives one interactive session.
type shell struct {
	c   *interp.Compiled
	tr  *trace.Trace
	cx  *slicing.Context
	an  *confidence.Analyzer
	ver *implicit.Verifier
	eng *verifyengine.Engine
	rec *obs.Recorder

	judged   map[int]bool // entries the user declared corrupted
	expanded map[int]bool
}

func newShell(c *interp.Compiled, bk interp.Backend, input, expected []int64, ef cliutil.EngineFlags, rec *obs.Recorder) (*shell, error) {
	rec.Begin("failing_run")
	run := bk.Run(c, interp.Options{Input: input, BuildTrace: true, Rec: rec})
	rec.End("failing_run", int64(run.Steps))
	if run.Err != nil {
		return nil, fmt.Errorf("failing run aborted: %w", run.Err)
	}
	seq, missing, ok := slicing.FirstWrongOutput(run.OutputValues(), expected)
	if !ok {
		return nil, fmt.Errorf("output matches the expected output; nothing to debug")
	}
	if missing {
		return nil, fmt.Errorf("failure is a truncated output stream; need a wrong value")
	}
	tr := run.Trace
	wrong := *tr.OutputAt(seq)
	var correct []trace.Output
	for i := 0; i < seq; i++ {
		correct = append(correct, *tr.OutputAt(i))
	}
	g := ddg.New(tr)
	an := confidence.New(c, g, nil, correct, wrong)
	an.Incremental = true
	an.Compute()
	ver := &implicit.Verifier{C: c, Input: input, Orig: tr, WrongOut: wrong, Backend: bk, Rec: rec}
	if seq < len(expected) {
		ver.Vexp, ver.HasVexp = expected[seq], true
	}
	eng := verifyengine.New(ver, verifyengine.Config{
		Workers:   ef.Workers,
		CacheSize: ef.Cache,
		Rec:       rec,
	})
	fmt.Printf("wrong output #%d: got %d", seq, wrong.Value)
	if ver.HasVexp {
		fmt.Printf(", expected %d", ver.Vexp)
	}
	fmt.Printf(" (printed at %v)\n", tr.At(wrong.Entry).Inst)
	return &shell{
		c: c, tr: tr, cx: slicing.NewContext(c, tr), an: an, ver: ver,
		eng: eng, rec: rec,
		judged: map[int]bool{}, expanded: map[int]bool{},
	}, nil
}

func (sh *shell) stmtText(id int) string {
	s := sh.c.Info.Stmt(id)
	if s == nil {
		return "?"
	}
	return ast.StmtString(s)
}

// nextUnjudged returns the top-ranked candidate awaiting a verdict.
func (sh *shell) nextUnjudged() (confidence.Candidate, bool) {
	for _, cand := range sh.an.FaultCandidates() {
		if !sh.judged[cand.Entry] {
			return cand, true
		}
	}
	return confidence.Candidate{}, false
}

func (sh *shell) list() {
	cands := sh.an.FaultCandidates()
	fmt.Printf("fault candidates (%d, most suspicious first):\n", len(cands))
	for i, cand := range cands {
		mark := " "
		if sh.judged[cand.Entry] {
			mark = "×" // user-confirmed corrupted
		}
		inst := sh.tr.At(cand.Entry).Inst
		fmt.Printf(" %s %2d. %-9v C=%.3f  %s\n", mark, i+1, inst, cand.Conf, sh.stmtText(inst.Stmt))
	}
}

// expand verifies PD(u) of the top corrupted candidate and adds verified
// edges.
func (sh *shell) expand() {
	for _, cand := range sh.an.FaultCandidates() {
		if sh.expanded[cand.Entry] {
			continue
		}
		sh.expanded[cand.Entry] = true
		u := cand.Entry
		pds := sh.cx.PotentialDeps(u)
		if len(pds) == 0 {
			fmt.Printf("no potential dependences at %v; trying the next candidate\n", sh.tr.At(u).Inst)
			continue
		}
		reqs := make([]implicit.Request, len(pds))
		for i, pd := range pds {
			reqs[i] = implicit.Request{
				Pred: pd.Pred, Use: u, UseSym: pd.UseSym, UseElem: pd.UseElem,
			}
		}
		verdicts := sh.eng.VerifyBatch(reqs)
		added := 0
		for i, pd := range pds {
			verdict := verdicts[i]
			pi := sh.tr.At(pd.Pred).Inst
			fmt.Printf("  VerifyDep(%v -> %v) = %v\n", pi, sh.tr.At(u).Inst, verdict)
			switch verdict {
			case implicit.StrongID:
				sh.an.AddEdges(confidence.Arc{From: u, To: pd.Pred, Kind: ddg.StrongImplicit})
				added++
			case implicit.ID:
				sh.an.AddEdges(confidence.Arc{From: u, To: pd.Pred, Kind: ddg.Implicit})
				added++
			}
		}
		if added > 0 {
			sh.an.Compute()
			fmt.Printf("%d implicit edge(s) added; slice re-pruned\n", added)
			return
		}
	}
	fmt.Println("no candidate produced verified edges")
}

func (sh *shell) loop(in *bufio.Scanner) {
	for {
		cand, ok := sh.nextUnjudged()
		if !ok {
			fmt.Println("every candidate is confirmed corrupted; [e]xpand, [l]ist or [q]uit")
		} else {
			inst := sh.tr.At(cand.Entry).Inst
			fmt.Printf("benign state at %v  C=%.3f  %s ? [y/n/e/l/q] ",
				inst, cand.Conf, sh.stmtText(inst.Stmt))
		}
		if !in.Scan() {
			break
		}
		switch strings.ToLower(strings.TrimSpace(in.Text())) {
		case "y", "yes":
			if ok {
				sh.an.MarkBenign(cand.Entry)
				sh.an.Compute()
			}
		case "n", "no":
			if ok {
				sh.judged[cand.Entry] = true
			}
		case "e", "expand":
			sh.expand()
		case "l", "list":
			sh.list()
		case "q", "quit", "":
			fmt.Println("final state:")
			sh.list()
			es := sh.eng.Stats()
			fmt.Printf("%d verifications performed (%d switched runs, %d cache hits)\n",
				sh.ver.Verifications, es.Runs, es.CacheHits)
			return
		default:
			fmt.Println("commands: y(es) n(o) e(xpand) l(ist) q(uit)")
		}
	}
}
