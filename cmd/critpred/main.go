// Command critpred runs the ICSE 2006 critical-predicate search — the
// predicate-switching baseline the PLDI 2007 paper builds on: brute-force
// switch one predicate instance at a time until the program produces the
// expected output.
//
// Usage:
//
//	critpred -correct correct.mc [flags] faulty.mc
//
//	-input "1,2,3"   integer input stream (failing input)
//	-text "abc"      input as the bytes of a string
//	-strategy S      search order: lefs (last-executed-first-switched)
//	                 or prior (dynamic-slice prioritized; default)
//	-max N           bound the number of re-executions
//
// Compare its re-execution counts against eoloc's verification counts:
// the locator verifies individual dependences at the failure point and
// keeps working where whole-output repair is impossible (see Ablation C).
package main

import (
	"flag"
	"fmt"
	"strings"

	"eol/internal/cliutil"
	"eol/internal/critpred"
	"eol/internal/interp"
	"eol/internal/lang/ast"
)

func main() {
	inputFlag := flag.String("input", "", "comma-separated integer input")
	textFlag := flag.String("text", "", "input as the bytes of a string")
	correctFlag := flag.String("correct", "", "path to the correct program version")
	strategyFlag := flag.String("strategy", "prior", "search order: lefs or prior")
	maxFlag := flag.Int("max", 0, "bound on re-executions (0 = all)")
	flag.Parse()

	if flag.NArg() != 1 || *correctFlag == "" {
		cliutil.Usagef("usage: critpred -correct correct.mc [flags] faulty.mc (see -h)")
	}
	input, err := cliutil.Input(*inputFlag, *textFlag)
	if err != nil {
		cliutil.Usagef("critpred: %v", err)
	}

	faulty := mustCompile(flag.Arg(0))
	correct := mustCompile(*correctFlag)

	expRun := interp.Run(correct, interp.Options{Input: input})
	if expRun.Err != nil {
		cliutil.Fatalf("critpred: correct run: %v", expRun.Err)
	}

	var strategy critpred.Strategy
	switch strings.ToLower(*strategyFlag) {
	case "lefs":
		strategy = critpred.LEFS
	case "prior":
		strategy = critpred.Prior
	default:
		cliutil.Usagef("critpred: unknown strategy %q", *strategyFlag)
	}

	res := critpred.Search(faulty, input, expRun.OutputValues(), critpred.Options{
		Strategy:    strategy,
		MaxSwitches: *maxFlag,
	})
	fmt.Printf("%d candidate predicate instances, %d switches tried (%s order)\n",
		res.Candidates, res.Switches, strategy)
	if !res.Found {
		fmt.Println("no critical predicate: no single switch repairs the whole output")
		return
	}
	fmt.Printf("CRITICAL PREDICATE: %v  %s\n", res.Critical,
		ast.StmtString(faulty.Info.Stmt(res.Critical.Stmt)))
}

func mustCompile(path string) *interp.Compiled {
	src, err := cliutil.LoadSource(path)
	if err != nil {
		cliutil.Fatalf("critpred: %v", err)
	}
	c, err := interp.Compile(src)
	if err != nil {
		cliutil.Fatalf("critpred: %s: %v", path, err)
	}
	return c
}
