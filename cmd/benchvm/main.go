// Command benchvm turns `go test -bench BenchmarkBackend...` output into
// BENCH_VM.json, the recorded tree-vs-VM benchmark trajectory point
// (docs/VM.md). It reads the benchmark lines from stdin, groups the
// tree/vm sub-benchmarks of each workload, and emits one JSON document
// with per-backend ns/op plus the tree/vm speedup per workload:
//
//	go test -run NONE -bench 'BenchmarkBackend...' . | benchvm -o BENCH_VM.json
//
// Invoked by `make bench-vm`.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Entry is one benchmark measurement.
type Entry struct {
	Name    string             `json:"name"`    // workload, backend element removed
	Backend string             `json:"backend"` // "tree" or "vm"
	NsPerOp float64            `json:"ns_per_op"`
	Iters   int                `json:"iters"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Ratio is the tree/vm speedup of one workload.
type Ratio struct {
	Name    string  `json:"name"`
	TreeNs  float64 `json:"tree_ns_per_op"`
	VMNs    float64 `json:"vm_ns_per_op"`
	Speedup float64 `json:"speedup"` // tree_ns / vm_ns
}

// Report is the BENCH_VM.json document.
type Report struct {
	Note       string  `json:"note"`
	Benchmarks []Entry `json:"benchmarks"`
	Ratios     []Ratio `json:"ratios"`
}

var lineRe = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+(\d+(?:\.\d+)?) ns/op(.*)$`)

// splitBackend removes the path element naming the backend, returning
// the workload key and the backend ("" if none).
func splitBackend(name string) (string, string) {
	parts := strings.Split(strings.TrimPrefix(name, "Benchmark"), "/")
	for i, p := range parts {
		if p == "tree" || p == "vm" {
			return strings.Join(append(parts[:i:i], parts[i+1:]...), "/"), p
		}
	}
	return strings.Join(parts, "/"), ""
}

func main() {
	out := flag.String("o", "BENCH_VM.json", "output path")
	flag.Parse()

	var entries []Entry
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // pass the raw output through for the log
		m := lineRe.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		name, backend := splitBackend(m[1])
		iters, _ := strconv.Atoi(m[2])
		ns, _ := strconv.ParseFloat(m[3], 64)
		e := Entry{Name: name, Backend: backend, NsPerOp: ns, Iters: iters}
		rest := strings.Fields(m[4])
		for i := 0; i+1 < len(rest); i += 2 {
			if v, err := strconv.ParseFloat(rest[i], 64); err == nil {
				if e.Metrics == nil {
					e.Metrics = map[string]float64{}
				}
				e.Metrics[rest[i+1]] = v
			}
		}
		entries = append(entries, e)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchvm: read:", err)
		os.Exit(1)
	}
	if len(entries) == 0 {
		fmt.Fprintln(os.Stderr, "benchvm: no benchmark lines on stdin")
		os.Exit(1)
	}

	byName := map[string]map[string]Entry{}
	for _, e := range entries {
		if e.Backend == "" {
			continue
		}
		if byName[e.Name] == nil {
			byName[e.Name] = map[string]Entry{}
		}
		byName[e.Name][e.Backend] = e
	}
	var ratios []Ratio
	for name, m := range byName {
		t, okT := m["tree"]
		v, okV := m["vm"]
		if okT && okV && v.NsPerOp > 0 {
			ratios = append(ratios, Ratio{
				Name: name, TreeNs: t.NsPerOp, VMNs: v.NsPerOp,
				Speedup: t.NsPerOp / v.NsPerOp,
			})
		}
	}
	sort.Slice(ratios, func(i, j int) bool { return ratios[i].Name < ratios[j].Name })

	rep := Report{
		Note:       "tree vs VM backend, `make bench-vm`; speedup = tree_ns / vm_ns",
		Benchmarks: entries,
		Ratios:     ratios,
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchvm: encode:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchvm: write:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchvm: wrote %s (%d benchmarks, %d ratios)\n", *out, len(entries), len(ratios))
}
