// Command eoloc runs the demand-driven execution-omission-error locator
// (Algorithm 2 of the PLDI 2007 paper) on a failing MiniC run.
//
// Usage:
//
//	eoloc -correct correct.mc [flags] faulty.mc
//
//	-input "1,2,3"  integer input stream (failing input)
//	-text "abc"     input as the bytes of a string
//	-root FRAG      source fragment of the root-cause statement (stops
//	                the search when it enters the candidate set)
//	-path           use the safe explicit-path VerifyDep variant
//	-iters N        maximum expansion iterations (default 10)
//	-profile "in1;in2"  extra passing inputs (';'-separated int lists)
//	                for value profiles
//	-perturb        enable the value-perturbation fallback (§5)
//	-report FILE    write a markdown debugging report
//	-deadline D     wall-clock bound for the whole localization ("30s");
//	                on expiry eoloc exits 1 with class [deadline]
//	-backend B      execution backend: vm (default) or tree
//	-workers N      verification workers (0 = GOMAXPROCS, 1 = sequential)
//	-cache N        switched-run cache size (0 = default, negative = off)
//	-trace FILE     write the deterministic JSONL run journal
//	-progress       print live phase progress to stderr
//
// The correct version provides both the expected output and the
// ground-truth benign-state oracle (instances whose state matches the
// correct run are benign), mechanizing the paper's interactive protocol.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"eol/internal/backend"
	"eol/internal/cliutil"
	"eol/internal/confidence"
	"eol/internal/core"
	"eol/internal/ddg"
	"eol/internal/interp"
	"eol/internal/lang/ast"
	"eol/internal/oracle"
	"eol/internal/report"
)

func main() {
	inputFlag := flag.String("input", "", "comma-separated integer input")
	textFlag := flag.String("text", "", "input as the bytes of a string")
	correctFlag := flag.String("correct", "", "path to the correct program version")
	rootFlag := flag.String("root", "", "source fragment of the root-cause statement")
	pathFlag := flag.Bool("path", false, "use the safe explicit-path VerifyDep")
	itersFlag := flag.Int("iters", 0, "maximum expansion iterations")
	profileFlag := flag.String("profile", "", "';'-separated passing inputs for value profiles")
	perturbFlag := flag.Bool("perturb", false, "enable the value-perturbation fallback")
	reportFlag := flag.String("report", "", "write a markdown debugging report to this file")
	deadlineFlag := cliutil.RegisterDeadlineFlag(flag.CommandLine)
	engFlags := cliutil.RegisterEngineFlags(flag.CommandLine)
	obsFlags := cliutil.RegisterObsFlags(flag.CommandLine)
	flag.Parse()

	if flag.NArg() != 1 || *correctFlag == "" {
		cliutil.Usagef("usage: eoloc -correct correct.mc [flags] faulty.mc (see -h)")
	}
	input, err := cliutil.Input(*inputFlag, *textFlag)
	if err != nil {
		cliutil.Usagef("eoloc: %v", err)
	}

	faulty := mustCompile(flag.Arg(0))
	correct := mustCompile(*correctFlag)

	bk, err := backend.Lookup(engFlags.Backend)
	if err != nil {
		cliutil.Usagef("eoloc: %v", err)
	}

	corRun := bk.Run(correct, interp.Options{Input: input, BuildTrace: true})
	if corRun.Err != nil {
		cliutil.Fatalf("eoloc: correct run: %v", corRun.Err)
	}

	observer, closeObs, err := obsFlags.Observer()
	if err != nil {
		cliutil.Fatalf("eoloc: %v", err)
	}

	spec := &core.Spec{
		Program:         faulty,
		Backend:         bk,
		Input:           input,
		Expected:        corRun.OutputValues(),
		Oracle:          &oracle.StateOracle{Correct: corRun.Trace},
		MaxIterations:   *itersFlag,
		PathMode:        *pathFlag,
		PerturbFallback: *perturbFlag,
		VerifyWorkers:   engFlags.Workers,
		VerifyCacheSize: engFlags.Cache,
		Checkpoints:     engFlags.Checkpoints,
		Features:        engFlags.Features(),
		Observer:        observer,
	}

	if *rootFlag != "" {
		for _, s := range faulty.Info.Stmts {
			if strings.Contains(ast.StmtString(s), *rootFlag) {
				spec.RootCause = append(spec.RootCause, s.ID())
			}
		}
		if len(spec.RootCause) == 0 {
			cliutil.Usagef("eoloc: no statement matches -root %q", *rootFlag)
		}
	}

	if *profileFlag != "" {
		prof := confidence.NewProfile()
		for _, part := range strings.Split(*profileFlag, ";") {
			in, err := cliutil.ParseInts(part)
			if err != nil {
				cliutil.Usagef("eoloc: -profile: %v", err)
			}
			r := bk.Run(faulty, interp.Options{Input: in, BuildTrace: true})
			if r.Err != nil {
				cliutil.Fatalf("eoloc: profile run: %v", r.Err)
			}
			prof.AddTrace(r.Trace)
		}
		spec.Profile = prof
	}

	ctx, cancel := deadlineFlag.Context()
	rep, err := core.LocateContext(ctx, spec)
	cancel()
	if cerr := closeObs(); cerr != nil {
		cliutil.Fatalf("eoloc: closing -trace journal: %v", cerr)
	}
	cliutil.ExitErr("eoloc", err)

	fmt.Printf("wrong output #%d: got %d, expected %d\n",
		rep.WrongOutput.Seq, rep.WrongOutput.Value, rep.Vexp)
	fmt.Printf("%d user prunings, %d verifications, %d iterations, %d implicit edges (%d strong)\n",
		rep.Stats.UserPrunings, rep.Stats.Verifications, rep.Stats.Iterations, rep.Stats.ExpandedEdges,
		rep.Graph.NumExtraEdges(ddg.StrongImplicit))
	if rep.Located {
		inst := rep.Trace.At(rep.RootEntry).Inst
		fmt.Printf("ROOT CAUSE located: %v  %s\n", inst,
			ast.StmtString(faulty.Info.Stmt(inst.Stmt)))
	} else if len(spec.RootCause) > 0 {
		fmt.Printf("root cause NOT located\n")
	}
	fmt.Printf("final fault candidate set (IPS, %d statements / %d instances):\n",
		rep.IPS.Static, rep.IPS.Dynamic)
	for i, e := range rep.IPSEntries {
		inst := rep.Trace.At(e).Inst
		fmt.Printf("  %2d. %-9v C=%.3f  %s\n", i+1, inst, rep.IPSConfidence[i],
			ast.StmtString(faulty.Info.Stmt(inst.Stmt)))
	}

	if *reportFlag != "" {
		f, err := os.Create(*reportFlag)
		if err != nil {
			cliutil.Fatalf("eoloc: %v", err)
		}
		err = report.WriteMarkdown(f, report.Input{
			Program: faulty, Report: rep, RootCause: spec.RootCause,
		})
		cerr := f.Close()
		if err != nil || cerr != nil {
			cliutil.Fatalf("eoloc: writing report: %v %v", err, cerr)
		}
		fmt.Printf("report written to %s\n", *reportFlag)
	}
}

func mustCompile(path string) *interp.Compiled {
	src, err := cliutil.LoadSource(path)
	if err != nil {
		cliutil.Fatalf("eoloc: %v", err)
	}
	c, err := interp.Compile(src)
	if err != nil {
		cliutil.Fatalf("eoloc: %s: %v", path, err)
	}
	return c
}
