// Command journalcheck validates JSONL run journals written by the
// -trace flag of eoloc, benchtab, eolshell or slicer (or any
// obs.Journal sink): every line must be valid JSON, sequence numbers
// contiguous from 1, event kinds known, and begin/end spans balanced.
//
// Usage:
//
//	journalcheck FILE...
//	journalcheck -          read one journal from stdin
//
// Exit status: 0 when every journal is valid, 1 when any is invalid or
// unreadable, 2 on usage errors.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"

	"eol/internal/cliutil"
	"eol/internal/obs"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintln(flag.CommandLine.Output(), "usage: journalcheck FILE... (or - for stdin)")
	}
	flag.Parse()
	if flag.NArg() == 0 {
		cliutil.Usagef("usage: journalcheck FILE... (or - for stdin)")
	}
	for _, path := range flag.Args() {
		data, err := load(path)
		if err != nil {
			cliutil.Fatalf("journalcheck: %v", err)
		}
		if err := obs.ValidateJournal(bytes.NewReader(data)); err != nil {
			cliutil.Fatalf("journalcheck: %s: %v", path, err)
		}
		fmt.Printf("%s: ok (%d events)\n", path, bytes.Count(data, []byte{'\n'}))
	}
}

func load(path string) ([]byte, error) {
	if path == "-" {
		return io.ReadAll(os.Stdin)
	}
	return os.ReadFile(path)
}
