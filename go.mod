module eol

go 1.22
